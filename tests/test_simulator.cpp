// Timing-accurate simulator (paper §IV-D/§V): exact cycle accounting,
// run/read/write breakdown, real-time verification, back-pressure stalls,
// and deadlock diagnosis.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/kernels.h"
#include "obs/recorder.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace bpp {
namespace {

using testutil::ItemSink;
using testutil::PassKernel;
using testutil::ScriptedSource;

TEST(Simulator, ExactCycleAccountingForOnePass) {
  // One data item through a PassKernel with known costs.
  Graph g;
  auto& src = g.add<ScriptedSource>(
      "src", std::vector<Item>{testutil::px(1.0),
                               testutil::token(tok::kEndOfStream)});
  auto& p = g.add<PassKernel>("p", /*cycles=*/50);
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", p, "in");
  g.connect(p, "out", sink, "in");

  SimOptions opt;
  opt.machine.clock_hz = 1e6;
  opt.machine.read_cost = 1.0;
  opt.machine.write_cost = 1.0;
  opt.machine.context_switch = 5.0;
  const Mapping m = map_one_to_one(g);
  Graph g2 = g.clone();
  const SimResult r = simulate(g2, m, opt);
  ASSERT_TRUE(r.completed) << r.diagnostics;

  // PassKernel core: data firing (cs 5 + read 1 + run 50 + write 1 = 57)
  // plus the EOS forward (cs 5 + read 1 + run 2 + write 1 = 9).
  const CoreStats& pc = r.cores[static_cast<size_t>(
      m.core_of[static_cast<size_t>(g2.find("p"))])];
  EXPECT_DOUBLE_EQ(pc.run_cycles, 52.0);
  EXPECT_DOUBLE_EQ(pc.read_cycles, 2.0);
  EXPECT_DOUBLE_EQ(pc.write_cycles, 2.0);
  EXPECT_DOUBLE_EQ(pc.switch_cycles, 10.0);
  EXPECT_EQ(pc.firings, 2);
}

TEST(Simulator, UtilizationBreakdownSumsToBusy) {
  Graph g = apps::histogram_app({24, 18}, 50.0, 2);
  const CompiledApp app = compile(g.clone());
  Graph run = app.graph.clone();
  SimOptions opt;
  opt.machine = app.options.machine;
  const SimResult r = simulate(run, app.mapping, opt);
  ASSERT_TRUE(r.completed);
  const CoreStats t = r.totals();
  EXPECT_GT(t.run_cycles, 0.0);
  EXPECT_GT(t.read_cycles, 0.0);
  EXPECT_GT(t.write_cycles, 0.0);
  EXPECT_NEAR(t.busy_cycles(),
              t.run_cycles + t.read_cycles + t.write_cycles + t.switch_cycles,
              1e-6);
  EXPECT_GT(r.avg_utilization(opt.machine), 0.0);
  EXPECT_LT(r.avg_utilization(opt.machine), 1.0);
}

TEST(Simulator, MeetsRealTimeWhenProvisioned) {
  for (const auto& cfg : apps::fig11_configs()) {
    CompiledApp app = compile(apps::figure1_app(cfg.frame, cfg.rate_hz, 2, 64));
    SimOptions opt;
    opt.machine = app.options.machine;
    const SimResult r = simulate(app.graph, app.mapping, opt);
    EXPECT_TRUE(r.completed) << cfg.tag << ": " << r.diagnostics;
    EXPECT_TRUE(r.realtime_met)
        << cfg.tag << ": lag " << r.max_input_lag_seconds << "s";
  }
}

TEST(Simulator, DetectsRealTimeViolationWhenUnderprovisioned) {
  // Compile for the normal machine but simulate on one 50x slower: the
  // input cannot be serviced and the lag explodes.
  CompiledApp app = compile(apps::figure1_app({48, 36}, 180.0, 2, 64));
  SimOptions opt;
  opt.machine = app.options.machine;
  opt.machine.clock_hz /= 50.0;
  const SimResult r = simulate(app.graph, app.mapping, opt);
  EXPECT_FALSE(r.realtime_met);
  EXPECT_GT(r.delayed_releases, 0);
}

TEST(Simulator, SequentialMappingIsSlowerButCorrect) {
  // All kernels on one core still completes (no real-time guarantee).
  Graph g = apps::histogram_app({16, 12}, 100.0, 1);
  Mapping m;
  m.core_of.assign(static_cast<size_t>(g.kernel_count()), 0);
  m.cores = 1;
  const SimResult r = simulate(g, m, SimOptions{});
  EXPECT_TRUE(r.completed);
  const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("result"));
  EXPECT_EQ(out.tiles().size(), 1u);
}

// Heavy per-window stage used by the Fig. 9 experiments.
class HeavyStage final : public Kernel {
 public:
  HeavyStage(std::string name, long cycles)
      : Kernel(std::move(name)), cycles_(cycles) {}
  void configure() override {
    create_input("in", {5, 5}, {1, 1}, {0.0, 0.0});
    create_output("out", {5, 5}, {1, 1});
    auto& m = register_method("work", Resources{cycles_, 8}, &HeavyStage::work);
    method_input(m, "in");
    method_output(m, "out");
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<HeavyStage>(*this);
  }

 private:
  void work() { write_output("out", read_input("in")); }
  long cycles_;
};

TEST(Simulator, BufferSlackRidesOutDownstreamOutages) {
  // Fig. 9's buffering lesson in this model: the windowed consumer shares
  // its core with a periodically-firing expensive kernel. During each
  // outage windows back up; a buffer with real output slack absorbs them
  // and the input never blocks, while a slack-1 buffer pushes the backlog
  // all the way to the (unstoppable) input.
  auto run = [](long slack) {
    Graph g;
    auto& in = g.add<InputKernel>("input", Size2{20, 12}, 100.0, 2);
    auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{5, 5},
                                    Step2{1, 1}, Size2{20, 12});
    buf.set_output_slack(slack);
    Kernel& heavy = g.add_kernel(std::make_unique<HeavyStage>("heavy", 600));
    auto& sink = g.add<ItemSink>("sink", Size2{5, 5});
    // The disturbance: a 200 Hz tick whose handler hogs the shared core.
    auto& tick = g.add<InputKernel>("tick", Size2{1, 1}, 200.0, 4);
    Kernel& hog = g.add_kernel(std::make_unique<PassKernel>("hog", 40000));
    auto& hsink = g.add<ItemSink>("hsink");
    g.connect(in, "out", buf, "in");
    g.connect(buf, "out", heavy, "in");
    g.connect(heavy, "out", sink, "in");
    g.connect(tick, "out", hog, "in");
    g.connect(hog, "out", hsink, "in");

    Mapping m = map_one_to_one(g);
    // Time-multiplex the hog onto the heavy stage's core.
    m.core_of[static_cast<size_t>(g.find("hog"))] =
        m.core_of[static_cast<size_t>(g.find("heavy"))];
    SimOptions opt;  // default 20 MHz machine
    return simulate(g, m, opt);
  };

  const SimResult generous = run(64);
  ASSERT_TRUE(generous.completed) << generous.diagnostics;
  const SimResult strangled = run(1);
  ASSERT_TRUE(strangled.completed) << strangled.diagnostics;

  EXPECT_EQ(generous.delayed_releases, 0) << "slack should absorb outages";
  EXPECT_GT(strangled.delayed_releases, 0);
  EXPECT_GT(strangled.max_input_lag_seconds, generous.max_input_lag_seconds);
}

TEST(Simulator, DeadlockDiagnosedOnMisalignedGraph) {
  // Feeding differently-sized streams into a subtract without alignment
  // stalls: EOL tokens never pair. The simulator reports items in flight.
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{12, 10}, 100.0, 1);
  auto& med = g.add<MedianKernel>("med", 3, 3);
  auto& conv = g.add<ConvolutionKernel>("conv", 5, 5);
  auto& coeff = g.add<ConstSource>("coeff", apps::blur_coeff5x5());
  Kernel& sub = g.add_kernel(make_subtract("sub"));
  auto& sink = g.add<ItemSink>("sink");
  auto& bm = g.add<BufferKernel>("bm", Size2{1, 1}, Size2{3, 3}, Step2{1, 1},
                                 Size2{12, 10});
  auto& bc = g.add<BufferKernel>("bc", Size2{1, 1}, Size2{5, 5}, Step2{1, 1},
                                 Size2{12, 10});
  g.connect(in, "out", bm, "in");
  g.connect(in, "out", bc, "in");
  g.connect(bm, "out", med, "in");
  g.connect(bc, "out", conv, "in");
  g.connect(coeff, "out", conv, "coeff");
  g.connect(med, "out", sub, "in0");
  g.connect(conv, "out", sub, "in1");
  g.connect(sub, "out", sink, "in");

  const SimResult r = simulate(g, map_one_to_one(g), SimOptions{});
  EXPECT_FALSE(r.diagnostics.empty());  // items left in flight
}

TEST(Simulator, InputSpanMatchesSchedule) {
  Graph g = apps::histogram_app({16, 12}, 25.0, 3);
  const SimResult r = simulate(g, map_one_to_one(g), SimOptions{});
  EXPECT_DOUBLE_EQ(r.input_span_seconds, 3.0 / 25.0);
  EXPECT_GE(r.sim_seconds, r.input_span_seconds * 0.99);
}

TEST(Simulator, MappingMustCoverGraph) {
  Graph g = apps::histogram_app({8, 6}, 25.0, 1);
  Mapping bad;
  bad.cores = 1;
  bad.core_of = {0};  // too short
  EXPECT_THROW((void)simulate(g, bad, SimOptions{}), ExecutionError);
}


TEST(Simulator, TraceRecordsFiringTimeline) {
  Graph g = apps::histogram_app({8, 6}, 50.0, 1);
  SimOptions opt;
  opt.trace_limit = 10;
  const SimResult r = simulate(g, map_one_to_one(g), opt);
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.trace.size(), 10u);
  double prev = 0.0;
  for (const FiringRecord& f : r.trace) {
    EXPECT_GE(f.start_seconds, prev - 1e-12);  // chronological
    prev = f.start_seconds;
    EXPECT_GT(f.duration_seconds, 0.0);
    EXPECT_GE(f.core, 0);
    EXPECT_GE(f.kernel, 0);
    EXPECT_LT(f.kernel, g.kernel_count());
  }
  // Tracing off by default.
  Graph h = apps::histogram_app({8, 6}, 50.0, 1);
  EXPECT_TRUE(simulate(h, map_one_to_one(h), SimOptions{}).trace.empty());
}

TEST(Simulator, TraceLimitMatchesRecorderFirings) {
  // trace_limit is a thin adapter over the obs trace layer: the FiringRecords
  // must equal the first N firing spans an external Recorder sees.
  Graph a = apps::histogram_app({8, 6}, 50.0, 1);
  const Mapping m = map_one_to_one(a);
  SimOptions lim;
  lim.trace_limit = 12;
  const SimResult ra = simulate(a, m, lim);
  ASSERT_TRUE(ra.completed);
  ASSERT_EQ(ra.trace.size(), 12u);

  Graph b = apps::histogram_app({8, 6}, 50.0, 1);
  obs::Recorder rec;
  SimOptions full;
  full.recorder = &rec;
  ASSERT_TRUE(simulate(b, m, full).completed);
  std::vector<obs::TraceEvent> firings;
  for (const obs::TraceEvent& e : rec.trace().events)
    if (e.kind == obs::EventKind::kFiring) firings.push_back(e);
  ASSERT_GE(firings.size(), ra.trace.size());

  for (size_t i = 0; i < ra.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.trace[i].start_seconds, firings[i].t0) << i;
    EXPECT_DOUBLE_EQ(ra.trace[i].duration_seconds,
                     firings[i].t1 - firings[i].t0)
        << i;
    EXPECT_EQ(ra.trace[i].core, firings[i].core) << i;
    EXPECT_EQ(ra.trace[i].kernel, firings[i].kernel) << i;
    EXPECT_EQ(ra.trace[i].method, firings[i].method) << i;
  }
}

TEST(Simulator, TraceLimitLargerThanRunKeepsEverything) {
  Graph g = apps::histogram_app({8, 6}, 50.0, 1);
  SimOptions opt;
  opt.trace_limit = 20'000;  // far more than the run fires
  const SimResult r = simulate(g, map_one_to_one(g), opt);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(static_cast<long>(r.trace.size()), r.total_firings);
}


TEST(Simulator, SinkFrameTimesTrackThroughput) {
  // §IV-D: "communication delays will only increase the latency for the
  // first output, but will not impact the throughput". The steady-state
  // frame period at the sink must equal the input frame period.
  const double rate = 100.0;
  const int frames = 5;
  CompiledApp app = compile(apps::figure1_app({32, 24}, rate, frames, 16));
  SimOptions opt;
  opt.machine = app.options.machine;
  const SimResult r = simulate(app.graph, app.mapping, opt);
  ASSERT_TRUE(r.completed);
  const auto* times = r.frame_times();
  ASSERT_NE(times, nullptr);
  ASSERT_EQ(times->size(), static_cast<size_t>(frames));
  // Steady-state period == 1/rate (within one pixel period of jitter).
  const double period = r.steady_frame_period();
  EXPECT_NEAR(period, 1.0 / rate, 1.0 / (rate * 32 * 24) + 1e-9);
  // First-output latency exceeds one frame (the frame must arrive first)
  // but not by much more than the pipeline depth allows.
  EXPECT_GT(r.first_frame_latency(), 1.0 / rate * 0.9);
  EXPECT_LT(r.first_frame_latency(), 2.5 / rate);
}

TEST(Simulator, KernelActivityAccounts) {
  Graph g = apps::histogram_app({16, 12}, 50.0, 2);
  const SimResult r = simulate(g, map_one_to_one(g), SimOptions{});
  ASSERT_TRUE(r.completed);
  ASSERT_EQ(r.kernel_activity.size(), static_cast<size_t>(g.kernel_count()));
  const auto& hist = r.kernel_activity[static_cast<size_t>(g.find("histogram"))];
  // 192 pixels + EOF + bins config + EOL drops per frame, two frames.
  EXPECT_GT(hist.first, 2 * 192);
  EXPECT_GT(hist.second, 0.0);
  // Sources never fire.
  const auto& in = r.kernel_activity[static_cast<size_t>(g.find("input"))];
  EXPECT_EQ(in.first, 0);
}

}  // namespace
}  // namespace bpp
