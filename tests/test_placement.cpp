// Simulated-annealing placement (paper §IV-D extension): mesh sizing,
// cost model, improvement over row-major, and determinism.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "placement/placement.h"

namespace bpp {
namespace {

TEST(Placement, MeshForCoreCounts) {
  EXPECT_EQ(mesh_for(1).tiles(), 1);
  EXPECT_EQ(mesh_for(4), (MeshSpec{2, 2}));
  EXPECT_EQ(mesh_for(5), (MeshSpec{3, 2}));
  EXPECT_EQ(mesh_for(9), (MeshSpec{3, 3}));
  EXPECT_EQ(mesh_for(10), (MeshSpec{4, 3}));
  EXPECT_GE(mesh_for(17).tiles(), 17);
}

CompiledApp compiled_example() {
  return compile(apps::figure1_app({48, 36}, 180.0, 1, 64));
}

TEST(Placement, RowMajorCostIsFinitePositive) {
  const CompiledApp app = compiled_example();
  const MeshSpec mesh = mesh_for(app.mapping.cores);
  const Placement p = place_row_major(app.graph, app.mapping, app.loads, mesh);
  EXPECT_GT(p.cost, 0.0);
  EXPECT_EQ(p.tile_of_core.size(), static_cast<size_t>(app.mapping.cores));
}

TEST(Placement, IntraCoreChannelsAreFree) {
  // With every kernel on one core the communication cost is zero.
  const CompiledApp app = compiled_example();
  Mapping one;
  one.cores = 1;
  one.core_of.assign(static_cast<size_t>(app.graph.kernel_count()), 0);
  const Placement p = place_row_major(app.graph, one, app.loads, mesh_for(1));
  EXPECT_DOUBLE_EQ(p.cost, 0.0);
}

TEST(Placement, AnnealingImprovesOrMatchesRowMajor) {
  const CompiledApp app = compiled_example();
  const MeshSpec mesh = mesh_for(app.mapping.cores);
  const Placement base = place_row_major(app.graph, app.mapping, app.loads, mesh);
  const Placement sa =
      place_annealed(app.graph, app.mapping, app.loads, mesh, 7, 8000);
  EXPECT_LE(sa.cost, base.cost);
  // And it should actually find something better on this irregular graph.
  EXPECT_LT(sa.cost, 0.95 * base.cost);
}

TEST(Placement, DeterministicInSeed) {
  const CompiledApp app = compiled_example();
  const MeshSpec mesh = mesh_for(app.mapping.cores);
  const Placement a =
      place_annealed(app.graph, app.mapping, app.loads, mesh, 42, 3000);
  const Placement b =
      place_annealed(app.graph, app.mapping, app.loads, mesh, 42, 3000);
  EXPECT_EQ(a.tile_of_core, b.tile_of_core);
  EXPECT_DOUBLE_EQ(a.cost, b.cost);
}

TEST(Placement, PlacementIsAPermutation) {
  const CompiledApp app = compiled_example();
  const MeshSpec mesh = mesh_for(app.mapping.cores);
  const Placement sa =
      place_annealed(app.graph, app.mapping, app.loads, mesh, 3, 5000);
  std::set<int> tiles(sa.tile_of_core.begin(), sa.tile_of_core.end());
  EXPECT_EQ(tiles.size(), sa.tile_of_core.size());  // no double occupancy
  for (int t : sa.tile_of_core) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, mesh.tiles());
  }
}

TEST(Placement, CostMatchesManualComputation) {
  // Two cores on a 2x1 mesh, one channel between them: cost = traffic * 1.
  Graph g = apps::histogram_app({8, 6}, 10.0, 1);
  CompileOptions opt;
  opt.machine = machines::roomy();
  CompiledApp app = compile(std::move(g), opt);
  Mapping two;
  two.cores = 2;
  two.core_of.assign(static_cast<size_t>(app.graph.kernel_count()), 0);
  // Move only the merge kernel to core 1.
  two.core_of[static_cast<size_t>(app.graph.find("merge"))] = 1;

  const auto traffic = channel_traffic(app.graph, app.loads);
  const Placement p =
      place_row_major(app.graph, two, app.loads, MeshSpec{2, 1});
  double want = 0.0;
  for (int c = 0; c < app.graph.channel_count(); ++c) {
    const Channel& ch = app.graph.channel(c);
    if (!ch.alive) continue;
    const bool cross =
        two.core_of[static_cast<size_t>(ch.src_kernel)] !=
        two.core_of[static_cast<size_t>(ch.dst_kernel)];
    if (cross) want += traffic[static_cast<size_t>(c)];
  }
  EXPECT_DOUBLE_EQ(p.cost, want);
  EXPECT_GT(p.cost, 0.0);
}

TEST(Placement, TooSmallMeshRejected) {
  const CompiledApp app = compiled_example();
  EXPECT_THROW((void)place_row_major(app.graph, app.mapping, app.loads,
                                     MeshSpec{2, 2}),
               AnalysisError);
}

}  // namespace
}  // namespace bpp
