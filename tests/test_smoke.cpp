// End-to-end smoke tests: the Fig. 1(b) application through the full
// compiler and both execution engines, checked against the golden
// reference.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

namespace bpp {
namespace {

std::vector<long> expected_histogram(Size2 frame, int frames, int bins) {
  std::vector<long> total;
  const Tile coeff = apps::blur_coeff5x5();
  const std::vector<double> uppers = apps::diff_bins(bins);
  for (int f = 0; f < frames; ++f) {
    const Tile img = ref::make_frame(frame, f, default_pixel_fn());
    const std::vector<long> h = ref::figure1_histogram(img, coeff, uppers);
    if (total.empty())
      total = h;
    else
      for (size_t i = 0; i < h.size(); ++i) total[i] += h[i];
  }
  return total;
}

std::vector<long> summed_outputs(const OutputKernel& out, int bins) {
  std::vector<long> total(static_cast<size_t>(bins), 0);
  for (const Tile& t : out.tiles())
    for (int i = 0; i < bins; ++i)
      total[static_cast<size_t>(i)] += static_cast<long>(t.at(i, 0));
  return total;
}

TEST(Smoke, Figure1CompilesAndRunsSequentially) {
  const Size2 frame{24, 18};
  const int frames = 2, bins = 16;
  CompileOptions opt;
  opt.machine = machines::roomy();  // no parallelization needed
  CompiledApp app = compile(apps::figure1_app(frame, 50.0, frames, bins), opt);

  RuntimeResult rr = run_sequential(app.graph);
  ASSERT_TRUE(rr.completed) << rr.diagnostics;

  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  EXPECT_EQ(out.tiles().size(), static_cast<size_t>(frames));
  EXPECT_EQ(summed_outputs(out, bins), expected_histogram(frame, frames, bins));
}

TEST(Smoke, Figure1ParallelizedMatchesReferenceInSimulator) {
  const Size2 frame{32, 24};
  const int frames = 2, bins = 16;
  CompiledApp app = compile(apps::figure1_app(frame, 200.0, frames, bins));
  SCOPED_TRACE(report_string(app));

  SimOptions sopt;
  sopt.machine = app.options.machine;
  SimResult sr = simulate(app.graph, app.mapping, sopt);
  EXPECT_TRUE(sr.completed) << sr.diagnostics;
  EXPECT_TRUE(sr.realtime_met)
      << "max lag " << sr.max_input_lag_seconds << "s, delayed "
      << sr.delayed_releases;

  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  EXPECT_EQ(summed_outputs(out, bins), expected_histogram(frame, frames, bins));
}

TEST(Smoke, Figure1ParallelizedMatchesReferenceInThreadedRuntime) {
  const Size2 frame{32, 24};
  const int frames = 3, bins = 16;
  CompiledApp app = compile(apps::figure1_app(frame, 200.0, frames, bins));

  RuntimeResult rr = run_threaded(app.graph, app.mapping);
  ASSERT_TRUE(rr.completed) << rr.diagnostics;

  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  EXPECT_EQ(summed_outputs(out, bins), expected_histogram(frame, frames, bins));
}

}  // namespace
}  // namespace bpp
