// Alignment pass (paper §III-C, Fig. 3/8): automatic trimming and padding
// of differently-haloed streams, with functional equivalence checks.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/alignment.h"
#include "compiler/dataflow.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "compiler/pipeline.h"

namespace bpp {
namespace {

TEST(Alignment, TrimInsertsFig3InsetKernel) {
  Graph g = apps::figure1_app({64, 48}, 30.0, 1);
  const auto edits = align(g, AlignPolicy::Trim);
  ASSERT_EQ(edits.size(), 1u);
  EXPECT_EQ(edits[0].at_kernel, "subtract");
  EXPECT_FALSE(edits[0].padded);
  // Fig. 3: "Inset (0,0)[1,1,1,1]" — one pixel per side off the median.
  EXPECT_EQ(edits[0].border, (Border{1, 1, 1, 1}));
  // The inset sits on the median branch.
  const KernelId id = g.find(edits[0].inserted);
  ASSERT_GE(id, 0);
  const auto in = g.in_channel(id, 0);
  ASSERT_TRUE(in.has_value());
  EXPECT_EQ(g.kernel(g.channel(*in).src_kernel).name(), "median3x3");
  // Afterwards the strict analysis succeeds.
  EXPECT_NO_THROW((void)analyze(g));
}

TEST(Alignment, TrimIsIdempotent) {
  Graph g = apps::figure1_app({64, 48}, 30.0, 1);
  (void)align(g, AlignPolicy::Trim);
  const auto again = align(g, AlignPolicy::Trim);
  EXPECT_TRUE(again.empty());
}

TEST(Alignment, AlignedGraphNeedsNoEdits) {
  Graph g = apps::histogram_app({32, 24}, 25.0, 1);
  EXPECT_TRUE(align(g).empty());
}

TEST(Alignment, PadGrowsTheConvolutionInput) {
  Graph g = apps::figure1_app({64, 48}, 30.0, 1);
  const auto edits = align(g, AlignPolicy::Pad);
  ASSERT_EQ(edits.size(), 1u);
  EXPECT_TRUE(edits[0].padded);
  EXPECT_EQ(edits[0].border, (Border{1, 1, 1, 1}));
  // The paper pads "around the input to the convolution filter": the pad
  // kernel feeds conv5x5's data input.
  const KernelId id = g.find(edits[0].inserted);
  const auto outs = g.out_channels(id);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(g.kernel(g.channel(outs[0]).dst_kernel).name(), "conv5x5");
  EXPECT_NO_THROW((void)analyze(g));
}

TEST(Alignment, TrimFunctionalEquivalence) {
  const Size2 frame{20, 16};
  CompileOptions opt;
  opt.machine = machines::roomy();
  opt.align_policy = AlignPolicy::Trim;
  CompiledApp app = compile(apps::figure1_app(frame, 25.0, 1, 16), opt);
  ASSERT_TRUE(run_sequential(app.graph).completed);

  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const auto want =
      ref::figure1_histogram(img, apps::blur_coeff5x5(), apps::diff_bins(16));
  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(out.tiles().size(), 1u);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(static_cast<long>(out.tiles()[0].at(i, 0)), want[static_cast<size_t>(i)])
        << "bin " << i;
}

TEST(Alignment, PadFunctionalEquivalence) {
  const Size2 frame{20, 16};
  CompileOptions opt;
  opt.machine = machines::roomy();
  opt.align_policy = AlignPolicy::Pad;
  CompiledApp app = compile(apps::figure1_app(frame, 25.0, 1, 16), opt);
  ASSERT_TRUE(run_sequential(app.graph).completed);

  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const auto want = ref::figure1_histogram_padded(img, apps::blur_coeff5x5(),
                                                  apps::diff_bins(16));
  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(out.tiles().size(), 1u);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(static_cast<long>(out.tiles()[0].at(i, 0)), want[static_cast<size_t>(i)])
        << "bin " << i;
}

TEST(Alignment, PadAndTrimDisagreeOnPurpose) {
  // §III-C: "The choice as to whether to pad or trim must be made by the
  // programmer as it effects the final result."
  const Size2 frame{20, 16};
  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const auto trimmed =
      ref::figure1_histogram(img, apps::blur_coeff5x5(), apps::diff_bins(16));
  const auto padded = ref::figure1_histogram_padded(img, apps::blur_coeff5x5(),
                                                    apps::diff_bins(16));
  EXPECT_NE(trimmed, padded);
  // Padding keeps every median sample: two more pixels per dimension.
  long nt = 0, np = 0;
  for (long v : trimmed) nt += v;
  for (long v : padded) np += v;
  EXPECT_EQ(nt, (frame.w - 4L) * (frame.h - 4));
  EXPECT_EQ(np, (frame.w - 2L) * (frame.h - 2));
}

TEST(Alignment, ThreeWayMisalignment) {
  // Three differently-haloed branches into two chained subtracts.
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{32, 32}, 10.0, 1);
  auto& c3 = g.add<ConvolutionKernel>("c3", 3, 3);
  auto& s3 = g.add<ConstSource>("k3", apps::blur_coeff3x3());
  auto& c5 = g.add<ConvolutionKernel>("c5", 5, 5);
  auto& s5 = g.add<ConstSource>("k5", apps::blur_coeff5x5());
  auto& c7 = g.add<ConvolutionKernel>("c7", 7, 7);
  auto& s7 = g.add<ConstSource>("k7", Tile(Size2{7, 7}, 1.0 / 49));
  Kernel& subA = g.add_kernel(make_subtract("subA"));
  Kernel& subB = g.add_kernel(make_subtract("subB"));
  auto& out = g.add<OutputKernel>("out");
  g.connect(in, "out", c3, "in");
  g.connect(s3, "out", c3, "coeff");
  g.connect(in, "out", c5, "in");
  g.connect(s5, "out", c5, "coeff");
  g.connect(in, "out", c7, "in");
  g.connect(s7, "out", c7, "coeff");
  g.connect(c3, "out", subA, "in0");
  g.connect(c5, "out", subA, "in1");
  g.connect(subA, "out", subB, "in0");
  g.connect(c7, "out", subB, "in1");
  g.connect(subB, "out", out, "in");

  const auto edits = align(g, AlignPolicy::Trim);
  EXPECT_GE(edits.size(), 2u);
  EXPECT_NO_THROW((void)analyze(g));
  const DataflowResult df = analyze(g);
  // Everything converges on the 7x7's 26x26 interior.
  const KernelId sb = g.find("subB");
  EXPECT_EQ(df.kernel[static_cast<size_t>(sb)].iterations, (Size2{26, 26}));
}

TEST(Alignment, IncompatibleScalesRejected) {
  // A downsampled branch cannot be trimmed against a full-rate branch.
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{16, 16}, 10.0, 1);
  auto& down = g.add<DownsampleKernel>("down", 2);
  Kernel& sub = g.add_kernel(make_subtract("sub"));
  auto& out = g.add<OutputKernel>("out");
  g.connect(in, "out", down, "in");
  g.connect(down, "out", sub, "in0");
  g.connect(in, "out", sub, "in1");
  g.connect(sub, "out", out, "in");
  EXPECT_THROW((void)align(g, AlignPolicy::Trim), AnalysisError);
}

}  // namespace
}  // namespace bpp
