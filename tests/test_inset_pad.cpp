// Inset (trim) and pad kernels (paper §III-C): pixel-exact edge handling
// and token rewriting to the new frame geometry.

#include <gtest/gtest.h>

#include "kernels/inset.h"
#include "runtime/runtime.h"
#include "test_util.h"

namespace bpp {
namespace {

using testutil::ItemSink;
using testutil::ScriptedSource;
using testutil::scanline_items;

struct TrimCase {
  Size2 frame;
  Border border;
};

class InsetTrim : public ::testing::TestWithParam<TrimCase> {};

TEST_P(InsetTrim, KeepsExactlyTheInterior) {
  const auto& c = GetParam();
  auto value = [](int x, int y) { return x + 100.0 * y; };

  Graph g;
  auto& src = g.add<ScriptedSource>("src", scanline_items(c.frame, value), c.frame);
  auto& inset = g.add<InsetKernel>("inset", c.border, c.frame);
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", inset, "in");
  g.connect(inset, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  const Size2 of = inset.out_frame();
  EXPECT_EQ(sink.data_count(), of.area());
  EXPECT_EQ(sink.token_count(tok::kEndOfLine), of.h);
  EXPECT_EQ(sink.token_count(tok::kEndOfFrame), 1);

  size_t n = 0;
  for (int y = 0; y < of.h; ++y)
    for (int x = 0; x < of.w; ++x) {
      while (n < sink.log.size() && sink.log[n] <= -1000.0) ++n;
      ASSERT_LT(n, sink.log.size());
      EXPECT_DOUBLE_EQ(sink.log[n++],
                       value(x + c.border.left, y + c.border.top));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InsetTrim,
    ::testing::Values(TrimCase{{8, 6}, {1, 1, 1, 1}},
                      TrimCase{{8, 6}, {0, 0, 0, 0}},
                      TrimCase{{8, 6}, {2, 0, 0, 3}},
                      TrimCase{{5, 5}, {2, 2, 2, 2}},
                      TrimCase{{10, 3}, {4, 0, 5, 0}},
                      TrimCase{{6, 9}, {0, 4, 0, 4}}));

TEST(InsetKernel, RejectsEmptyResult) {
  EXPECT_THROW(InsetKernel("x", {3, 0, 3, 0}, {6, 6}), GraphError);
  EXPECT_THROW(InsetKernel("x", {-1, 0, 0, 0}, {6, 6}), GraphError);
}

TEST(InsetKernel, MultiFrameStateReset) {
  const Size2 frame{5, 4};
  std::vector<Item> items;
  for (int f = 0; f < 2; ++f) {
    auto s = scanline_items(frame, [f](int x, int y) { return f * 100 + x + 10 * y; },
                            false);
    items.insert(items.end(), s.begin(), s.end());
  }
  items.push_back(testutil::token(tok::kEndOfStream));

  Graph g;
  auto& src = g.add<ScriptedSource>("src", items, frame);
  auto& inset = g.add<InsetKernel>("inset", Border{1, 1, 1, 1}, frame);
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", inset, "in");
  g.connect(inset, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);
  EXPECT_EQ(sink.data_count(), 2L * 3 * 2);
  EXPECT_EQ(sink.token_count(tok::kEndOfFrame), 2);
}

struct PadCase {
  Size2 frame;
  Border border;
};

class PadZero : public ::testing::TestWithParam<PadCase> {};

TEST_P(PadZero, SurroundsWithZeros) {
  const auto& c = GetParam();
  auto value = [](int x, int y) { return 1.0 + x + 100.0 * y; };  // nonzero

  Graph g;
  auto& src = g.add<ScriptedSource>("src", scanline_items(c.frame, value), c.frame);
  auto& pad = g.add<PadKernel>("pad", c.border, c.frame);
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", pad, "in");
  g.connect(pad, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  const Size2 of = pad.out_frame();
  EXPECT_EQ(sink.data_count(), of.area());
  EXPECT_EQ(sink.token_count(tok::kEndOfLine), of.h);

  size_t n = 0;
  for (int y = 0; y < of.h; ++y)
    for (int x = 0; x < of.w; ++x) {
      while (n < sink.log.size() && sink.log[n] <= -1000.0) ++n;
      ASSERT_LT(n, sink.log.size());
      const int sx = x - c.border.left;
      const int sy = y - c.border.top;
      const bool interior =
          sx >= 0 && sx < c.frame.w && sy >= 0 && sy < c.frame.h;
      EXPECT_DOUBLE_EQ(sink.log[n++], interior ? value(sx, sy) : 0.0)
          << "at (" << x << ',' << y << ')';
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PadZero,
    ::testing::Values(PadCase{{4, 3}, {1, 1, 1, 1}},
                      PadCase{{4, 3}, {0, 0, 0, 0}},
                      PadCase{{4, 3}, {2, 0, 0, 1}},
                      PadCase{{2, 2}, {3, 3, 3, 3}},
                      PadCase{{6, 1}, {0, 2, 0, 2}}));

TEST(PadKernel, TrimOfPadIsIdentity) {
  // pad by b then trim by b must reproduce the stream exactly.
  const Size2 frame{6, 5};
  const Border b{2, 1, 1, 2};
  auto value = [](int x, int y) { return 3.0 + x * y; };

  Graph g;
  auto& src = g.add<ScriptedSource>("src", scanline_items(frame, value), frame);
  auto& pad = g.add<PadKernel>("pad", b, frame);
  auto& inset = g.add<InsetKernel>(
      "inset", b, Size2{frame.w + b.left + b.right, frame.h + b.top + b.bottom});
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", pad, "in");
  g.connect(pad, "out", inset, "in");
  g.connect(inset, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  size_t n = 0;
  for (int y = 0; y < frame.h; ++y)
    for (int x = 0; x < frame.w; ++x) {
      while (n < sink.log.size() && sink.log[n] <= -1000.0) ++n;
      ASSERT_LT(n, sink.log.size());
      EXPECT_DOUBLE_EQ(sink.log[n++], value(x, y));
    }
  EXPECT_EQ(sink.data_count(), frame.area());
}

TEST(InsetPad, CustomStreamTransforms) {
  StreamInfo in;
  in.frame = {10, 8};
  in.inset = {2.0, 2.0};
  in.scale = {1.0, 1.0};
  in.items_per_frame = 80;
  in.grid = {10, 8};

  InsetKernel tr("t", {1, 1, 1, 1}, {10, 8});
  auto out = tr.custom_output_stream(0, in);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->frame, (Size2{8, 6}));
  EXPECT_EQ(out->inset, (Offset2{3.0, 3.0}));

  PadKernel pd("p", {1, 1, 1, 1}, {10, 8});
  out = pd.custom_output_stream(0, in);
  ASSERT_TRUE(out);
  EXPECT_EQ(out->frame, (Size2{12, 10}));
  EXPECT_EQ(out->inset, (Offset2{1.0, 1.0}));
}

TEST(InsetPad, SerialParallelKind) {
  // Scan-order FSMs must never be round-robin replicated.
  EXPECT_EQ(InsetKernel("t", {1, 1, 1, 1}, {8, 8}).parallel_kind(),
            ParKind::Serial);
  EXPECT_EQ(PadKernel("p", {1, 1, 1, 1}, {8, 8}).parallel_kind(),
            ParKind::Serial);
}

}  // namespace
}  // namespace bpp
