// Automatic buffering pass (paper §III-B, Fig. 3): buffers exactly where
// granularity mismatches, sized by the double-buffer rule.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/alignment.h"
#include "compiler/buffering.h"
#include "compiler/dataflow.h"
#include "kernels/buffer.h"
#include "kernels/kernels.h"

namespace bpp {
namespace {

TEST(Buffering, Figure3BuffersForBothFilters) {
  Graph g = apps::figure1_app({100, 100}, 50.0, 1);
  (void)align(g, AlignPolicy::Trim);
  DataflowResult df = analyze(g);
  const auto ins = insert_buffers(g, df);

  ASSERT_EQ(ins.size(), 2u);
  // Per the paper's sizing rule: width x 2*window_h.
  for (const auto& b : ins) {
    if (b.consumer == "median3x3") {
      EXPECT_EQ(b.annotation, "[100x6]");
      EXPECT_EQ(b.storage_words, 600);
    } else {
      EXPECT_EQ(b.consumer, "conv5x5");
      EXPECT_EQ(b.annotation, "[100x10]");
      EXPECT_EQ(b.storage_words, 1000);
    }
    EXPECT_EQ(b.producer, "input");
  }
  EXPECT_NO_THROW((void)analyze(g));
}

TEST(Buffering, MatchingGranularityNeedsNoBuffer) {
  // histogram consumes 1x1 pixels straight from the input; bins and merge
  // channels already match their windows.
  Graph g = apps::histogram_app({32, 24}, 25.0, 1);
  DataflowResult df = analyze(g);
  EXPECT_TRUE(insert_buffers(g, df).empty());
}

TEST(Buffering, IsIdempotent) {
  Graph g = apps::figure1_app({64, 48}, 30.0, 1);
  (void)align(g);
  DataflowResult df = analyze(g);
  (void)insert_buffers(g, df);
  df = analyze(g);
  EXPECT_TRUE(insert_buffers(g, df).empty());
}

TEST(Buffering, ChainOfConvolutionsGetsBufferPerStage) {
  Graph g = apps::multi_convolution_app({32, 24}, 10.0, 1);
  DataflowResult df = analyze(g);
  const auto ins = insert_buffers(g, df);
  ASSERT_EQ(ins.size(), 3u);
  // The second stage's buffer adapts the first stage's 1x1 output stream
  // (30x22 frame) to 3x3 windows.
  bool found = false;
  for (const auto& b : ins)
    if (b.consumer == "convB") {
      EXPECT_EQ(b.annotation, "[30x6]");
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(Buffering, BayerWindowedStep) {
  Graph g = apps::bayer_app({16, 12}, 10.0, 1);
  DataflowResult df = analyze(g);
  const auto ins = insert_buffers(g, df);
  ASSERT_EQ(ins.size(), 1u);
  EXPECT_EQ(ins[0].annotation, "[16x8]");  // 2*4 rows for the (4x4)[2,2] window

  // The output side (2x2 tiles into the 2x2 sink input) needs none.
  df = analyze(g);
  EXPECT_TRUE(insert_buffers(g, df).empty());
}

TEST(Buffering, BufferKernelParametersMatchConsumer) {
  Graph g = apps::bayer_app({16, 12}, 10.0, 1);
  DataflowResult df = analyze(g);
  const auto ins = insert_buffers(g, df);
  const auto* buf = dynamic_cast<const BufferKernel*>(
      &g.kernel(g.find(ins[0].name)));
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->in_granularity(), (Size2{1, 1}));
  EXPECT_EQ(buf->out_window(), (Size2{4, 4}));
  EXPECT_EQ(buf->out_step(), (Step2{2, 2}));
  EXPECT_EQ(buf->frame(), (Size2{16, 12}));
}

TEST(Buffering, DownsampleThenConvBuffersBoth) {
  Graph g = apps::downsample_app({16, 12}, 10.0, 1);
  DataflowResult df = analyze(g);
  const auto ins = insert_buffers(g, df);
  ASSERT_EQ(ins.size(), 2u);  // input->down2 (2x2 blocks), down2->conv (3x3)
}

}  // namespace
}  // namespace bpp
