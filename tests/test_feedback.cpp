// Feedback extension (paper §III-D): loop-breaking feedback kernels,
// initialization priming, data-flow convergence, and the temporal IIR
// recurrence against a scalar reference.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/dataflow.h"
#include "compiler/pipeline.h"
#include "kernels/feedback.h"
#include "kernels/output.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

namespace bpp {
namespace {

TEST(Feedback, InitialEmissionsPrimeOneFrame) {
  InitialValueKernel init("init", {4, 3}, 10.0, 2.5);
  init.ensure_configured();
  const auto prime = init.initial_emissions();
  // 12 pixels + 3 EOLs + 1 EOF.
  ASSERT_EQ(prime.size(), 16u);
  EXPECT_TRUE(is_data(prime[0].item));
  EXPECT_DOUBLE_EQ(as_tile(prime[0].item).at(0, 0), 2.5);
  EXPECT_TRUE(is_token(prime[4].item));  // after 4 pixels: EOL
  EXPECT_EQ(as_token(prime.back().item).cls, tok::kEndOfFrame);
}

TEST(Feedback, RecurrenceMatchesScalarReference) {
  const Size2 frame{6, 5};
  const int frames = 4;
  const double alpha = 0.25;
  Graph g = apps::feedback_app(frame, 20.0, frames, alpha);
  ASSERT_TRUE(run_sequential(g).completed);

  const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("result"));
  ASSERT_EQ(out.frames().size(), static_cast<size_t>(frames));

  // y_t = alpha x_t + (1-alpha) y_{t-1}, y_{-1} = 0, per pixel.
  Tile prev(frame);
  for (int f = 0; f < frames; ++f) {
    const Tile x = ref::make_frame(frame, f, default_pixel_fn());
    Tile y(frame);
    for (int j = 0; j < frame.h; ++j)
      for (int i = 0; i < frame.w; ++i)
        y.at(i, j) = alpha * x.at(i, j) + (1 - alpha) * prev.at(i, j);
    for (int j = 0; j < frame.h; ++j)
      for (int i = 0; i < frame.w; ++i)
        EXPECT_NEAR(out.frames()[static_cast<size_t>(f)].at(i, j), y.at(i, j),
                    1e-12)
            << "frame " << f;
    prev = y;
  }
}

TEST(Feedback, NonZeroInitialValue) {
  const Size2 frame{3, 3};
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, 10.0, 1,
                                   [](int, int, int) { return 0.0; });
  auto& mix = g.add<TemporalMixKernel>("mix", 0.5);
  auto& init = g.add<InitialValueKernel>("init", frame, 10.0, 100.0);
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", mix, "x");
  g.connect(init, "out", mix, "prev");
  g.connect(mix, "out", init, "in");
  g.connect(mix, "out", out, "in");
  ASSERT_TRUE(run_sequential(g).completed);
  ASSERT_EQ(out.frames().size(), 1u);
  // 0.5*0 + 0.5*100 everywhere.
  EXPECT_DOUBLE_EQ(out.frames()[0].at(1, 1), 50.0);
}

TEST(Feedback, SimulatorHandlesTheLoop) {
  Graph g = apps::feedback_app({8, 6}, 25.0, 2, 0.5);
  const SimResult r = simulate(g, map_one_to_one(g), SimOptions{});
  EXPECT_TRUE(r.completed);
  const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("result"));
  EXPECT_EQ(out.frames().size(), 2u);
  // The loop's final frame legitimately remains in flight (§III-D shutdown).
}

TEST(Feedback, CompilesThroughTheFullPipeline) {
  CompileOptions opt;
  CompiledApp app = compile(apps::feedback_app({8, 6}, 25.0, 2, 0.5), opt);
  // Serial loop kernels are never replicated.
  EXPECT_FALSE(app.parallelization.factors.count("mix"));
  EXPECT_FALSE(app.parallelization.factors.count("loopInit"));
  ASSERT_TRUE(run_sequential(app.graph).completed);
}

TEST(Feedback, MissingSpecRejected) {
  class BadFeedback final : public Kernel {
   public:
    BadFeedback() : Kernel("badfb") {}
    void configure() override {
      create_input("in", {1, 1});
      create_output("out", {1, 1});
      auto& m = register_method("pass", Resources{1, 0}, &BadFeedback::pass);
      method_input(m, "in");
      method_output(m, "out");
    }
    [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
      return std::make_unique<BadFeedback>(*this);
    }
    [[nodiscard]] bool is_feedback() const override { return true; }

   private:
    void pass() { write_output("out", read_input("in")); }
  };

  Graph g;
  auto& input = g.add<InputKernel>("input", Size2{4, 4}, 10.0, 1);
  auto& mix = g.add<TemporalMixKernel>("mix", 0.5);
  Kernel& fb = g.add_kernel(std::make_unique<BadFeedback>());
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", mix, "x");
  g.connect(fb, "out", mix, "prev");
  g.connect(mix, "out", fb, "in");
  g.connect(mix, "out", out, "in");
  EXPECT_THROW((void)analyze(g), AnalysisError);
}

}  // namespace
}  // namespace bpp
