// Kernel model (paper §II-B): port/method registration, the runtime API
// contract, resources, and cloning.

#include <gtest/gtest.h>

#include "kernels/convolution.h"
#include "kernels/histogram.h"
#include "test_util.h"

namespace bpp {
namespace {

using testutil::PassKernel;

class ProbeKernel final : public Kernel {
 public:
  explicit ProbeKernel(std::string name) : Kernel(std::move(name)) {}
  void configure() override {
    create_input("a", {2, 2}, {1, 1}, {0.5, 0.5});
    create_input("b", {1, 1});
    create_output("x", {1, 1});
    create_output("y", {4, 1});
    set_replicated("b");
    auto& m = register_method("run", Resources{42, 7}, &ProbeKernel::run);
    method_input(m, "a");
    method_input(m, "b");
    method_output(m, "x");
    auto& t = register_method("onEof", Resources{3, 9}, &ProbeKernel::run);
    method_input(t, "a", tok::kEndOfFrame);
    method_output(t, "y");
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<ProbeKernel>(*this);
  }

 private:
  void run() {}
};

TEST(KernelModel, PortRegistration) {
  ProbeKernel k("probe");
  k.ensure_configured();
  ASSERT_EQ(k.inputs().size(), 2u);
  ASSERT_EQ(k.outputs().size(), 2u);
  EXPECT_EQ(k.input_index("a"), 0);
  EXPECT_EQ(k.input_index("b"), 1);
  EXPECT_EQ(k.input_index("nope"), -1);
  EXPECT_EQ(k.output_index("y"), 1);
  EXPECT_EQ(k.input(0).spec.window, (Size2{2, 2}));
  EXPECT_EQ(k.input(0).spec.offset, (Offset2{0.5, 0.5}));
  EXPECT_TRUE(k.input(1).spec.replicated);
  EXPECT_FALSE(k.input(0).spec.replicated);
  // Output step defaults to the window (non-overlapping emission).
  EXPECT_EQ(k.output(1).spec.step, (Step2{4, 1}));
}

TEST(KernelModel, ConfigureRunsOnce) {
  ProbeKernel k("probe");
  k.ensure_configured();
  k.ensure_configured();
  EXPECT_EQ(k.inputs().size(), 2u);  // not doubled
}

TEST(KernelModel, MethodTriggersAndMappings) {
  ProbeKernel k("probe");
  k.ensure_configured();
  ASSERT_EQ(k.methods().size(), 2u);
  const MethodDef& run = k.methods()[0];
  EXPECT_FALSE(run.token_triggered());
  EXPECT_EQ(run.inputs, (std::vector<int>{0, 1}));
  EXPECT_EQ(run.outputs, (std::vector<int>{0}));
  EXPECT_EQ(run.res.cycles, 42);
  const MethodDef& eof = k.methods()[1];
  ASSERT_TRUE(eof.token_triggered());
  EXPECT_EQ(*eof.trigger_token, tok::kEndOfFrame);

  EXPECT_EQ(k.data_method_of_input(0), 0);
  EXPECT_EQ(k.data_method_of_input(1), 0);
  EXPECT_EQ(k.token_method_of_input(0, tok::kEndOfFrame), 1);
  EXPECT_EQ(k.token_method_of_input(0, tok::kEndOfLine), -1);
  EXPECT_EQ(k.token_method_of_input(1, tok::kEndOfFrame), -1);
}

TEST(KernelModel, StateMemorySumsMethods) {
  ProbeKernel k("probe");
  k.ensure_configured();
  EXPECT_EQ(k.state_memory(), 7 + 9);
}

class BadDuplicateInput final : public Kernel {
 public:
  BadDuplicateInput() : Kernel("bad") {}
  void configure() override {
    create_input("in", {1, 1});
    create_input("in", {1, 1});
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override { return nullptr; }
};

TEST(KernelModel, DuplicateInputRejected) {
  BadDuplicateInput k;
  EXPECT_THROW(k.ensure_configured(), GraphError);
}

class BadTwoDataMethods final : public Kernel {
 public:
  BadTwoDataMethods() : Kernel("bad2") {}
  void configure() override {
    create_input("in", {1, 1});
    auto& a = register_method("a", Resources{1, 0}, &BadTwoDataMethods::noop);
    method_input(a, "in");
    auto& b = register_method("b", Resources{1, 0}, &BadTwoDataMethods::noop);
    method_input(b, "in");  // same input may not trigger two data methods
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override { return nullptr; }

 private:
  void noop() {}
};

TEST(KernelModel, InputMayTriggerOnlyOneDataMethod) {
  BadTwoDataMethods k;
  EXPECT_THROW(k.ensure_configured(), GraphError);
}

TEST(KernelModel, RuntimeApiOutsideExecutionThrows) {
  PassKernel k("p");
  k.ensure_configured();
  ExecContext ctx;
  EXPECT_THROW((void)k.invoke(5, ctx), ExecutionError);
}

TEST(KernelModel, InvokeBindsInputsAndCollectsEmissions) {
  PassKernel k("p");
  k.ensure_configured();
  ExecContext ctx;
  Item in = testutil::px(3.5);
  ctx.bind_input(0, &in);
  k.invoke(0, ctx);
  ASSERT_EQ(ctx.emissions().size(), 1u);
  EXPECT_EQ(ctx.emissions()[0].port, 0);
  EXPECT_EQ(as_tile(ctx.emissions()[0].item).at(0, 0), 3.5);
}

class WrongSizeWriter final : public Kernel {
 public:
  WrongSizeWriter() : Kernel("w") {}
  void configure() override {
    create_input("in", {1, 1});
    create_output("out", {2, 2});
    auto& m = register_method("m", Resources{1, 0}, &WrongSizeWriter::go);
    method_input(m, "in");
    method_output(m, "out");
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override { return nullptr; }

 private:
  void go() { write_output("out", Tile(1, 1)); }  // expects 2x2
};

TEST(KernelModel, WrongTileSizeRejected) {
  WrongSizeWriter k;
  k.ensure_configured();
  ExecContext ctx;
  Item in = testutil::px(0);
  ctx.bind_input(0, &in);
  EXPECT_THROW(k.invoke(0, ctx), ExecutionError);
}

TEST(KernelModel, CloneIsIndependent) {
  ConvolutionKernel k("conv", 3, 3);
  k.ensure_configured();
  auto c = k.clone();
  c->ensure_configured();
  EXPECT_EQ(c->name(), "conv");
  EXPECT_EQ(c->inputs().size(), k.inputs().size());
  // The clone's method bodies act on the clone's own state.
  ExecContext ctx;
  Tile coeff(Size2{3, 3}, 1.0);
  Item coeff_item = coeff;
  ctx.bind_input(c->input_index("coeff"), &coeff_item);
  c->invoke(0, ctx);  // loadCoeff is registered first
  EXPECT_TRUE(dynamic_cast<ConvolutionKernel&>(*c).coeff_loaded());
  EXPECT_FALSE(k.coeff_loaded());
}

class SelfTuningKernel final : public Kernel {
 public:
  SelfTuningKernel() : Kernel("tuner") {}
  void configure() override {
    create_input("in", {1, 1});
    auto& m = register_method("m", Resources{10, 1}, &SelfTuningKernel::noop);
    method_input(m, "in");
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<SelfTuningKernel>(*this);
  }
  void retune(long cycles) { method_mut("m").res.cycles = cycles; }
  void retune_missing() { (void)method_mut("missing"); }

 private:
  void noop() {}
};

TEST(KernelModel, MethodMutAllowsResourceUpdate) {
  SelfTuningKernel k;
  k.ensure_configured();
  k.retune(99);
  EXPECT_EQ(k.methods()[0].res.cycles, 99);
  EXPECT_THROW(k.retune_missing(), GraphError);
}

TEST(KernelModel, HistogramUniformBins) {
  const Tile bins = HistogramKernel::uniform_bins(4, 0.0, 8.0);
  ASSERT_EQ(bins.size(), (Size2{4, 1}));
  EXPECT_DOUBLE_EQ(bins.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(bins.at(3, 0), 8.0);
}

}  // namespace
}  // namespace bpp
