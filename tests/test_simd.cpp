// Scalar-vs-SIMD equivalence for every primitive in the dispatch table.
//
// The scalar table is the golden reference. For each ISA the machine
// supports, every primitive is checked against it across odd sizes and
// tail widths (1..4*W+3). Most primitives must match bit-for-bit; the two
// reductions that reassociate (dot, conv2d) are held to an explicit
// rounding bound: |simd - scalar| <= 2 * n * eps * sum|a_i * b_i|.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "apps/pipelines.h"
#include "core/tile.h"
#include "kernels/input.h"
#include "kernels/simd/simd.h"
#include "ref/reference.h"

namespace bpp::simd {
namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Uniform in [-128, 128) with a fractional part — deliberately not dyadic,
// so reassociated sums genuinely differ and the ULP bound is exercised.
double rnd(std::uint64_t& s) {
  return static_cast<double>(splitmix(s) % (1ULL << 53)) /
             static_cast<double>(1ULL << 45) -
         128.0;
}

std::vector<double> rnd_vec(std::uint64_t& s, int n) {
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = rnd(s);
  return v;
}

Tile rnd_tile(std::uint64_t& s, int w, int h) {
  Tile t(w, h);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) t.at(x, y) = rnd(s);
  return t;
}

std::vector<Isa> simd_isas() {
  std::vector<Isa> v;
  for (Isa isa : {Isa::kSse2, Isa::kAvx2, Isa::kNeon})
    if (supported(isa)) v.push_back(isa);
  return v;
}

// Rounding bound for an n-term reassociated dot product: each of the ~n
// roundings perturbs by at most eps * sum|a_i b_i|; factor 2 covers FMA
// rounding the product and the sum differently.
double dot_bound(const double* a, const double* b, int n) {
  double mag = 0.0;
  for (int i = 0; i < n; ++i) mag += std::abs(a[i] * b[i]);
  return 2.0 * n * std::numeric_limits<double>::epsilon() * mag;
}

constexpr int kMaxN = 4 * 8 + 3;  // covers every tail for W in {2, 4}

TEST(Simd, ScalarAlwaysSupported) {
  EXPECT_TRUE(supported(Isa::kScalar));
  EXPECT_TRUE(supported(detect_best()));
  EXPECT_STREQ(ops_for(Isa::kScalar).name, "scalar");
}

TEST(Simd, IsaNamesRoundTrip) {
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon}) {
    const auto parsed = isa_from_name(isa_name(isa));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, isa);
  }
  ASSERT_TRUE(isa_from_name("native").has_value());
  EXPECT_EQ(*isa_from_name("native"), detect_best());
  EXPECT_FALSE(isa_from_name("avx512").has_value());
  EXPECT_FALSE(isa_from_name("").has_value());
}

TEST(Simd, SetIsaRejectsUnsupported) {
  const Isa before = active_isa();
  bool any_unsupported = false;
  for (Isa isa : {Isa::kSse2, Isa::kAvx2, Isa::kNeon})
    if (!supported(isa)) {
      any_unsupported = true;
      EXPECT_FALSE(set_isa(isa));
      EXPECT_EQ(active_isa(), before);
    }
  if (!any_unsupported) GTEST_SKIP() << "every ISA supported here";
}

TEST(Simd, DotWithinReassociationBound) {
  const Ops& sc = ops_for(Isa::kScalar);
  std::uint64_t s = 1;
  for (Isa isa : simd_isas()) {
    const Ops& v = ops_for(isa);
    for (int n = 1; n <= kMaxN; ++n) {
      const std::vector<double> a = rnd_vec(s, n);
      const std::vector<double> b = rnd_vec(s, n);
      const double want = sc.dot(a.data(), b.data(), n);
      const double got = v.dot(a.data(), b.data(), n);
      EXPECT_LE(std::abs(got - want), dot_bound(a.data(), b.data(), n))
          << v.name << " n=" << n;
    }
  }
}

TEST(Simd, Conv2dWithinReassociationBound) {
  const Ops& sc = ops_for(Isa::kScalar);
  std::uint64_t s = 2;
  for (Isa isa : simd_isas()) {
    const Ops& v = ops_for(isa);
    for (const int kw : {1, 3, 5}) {
      for (int out_w = 1; out_w <= kMaxN; out_w += 3) {
        const int kh = kw;
        const int out_h = 3;
        const Tile in = rnd_tile(s, out_w + kw - 1, out_h + kh - 1);
        const std::vector<double> k = rnd_vec(s, kw * kh);
        Tile want(out_w, out_h);
        Tile got(out_w, out_h);
        sc.conv2d(in.data(), in.stride(), k.data(), kw, kh, want.data(),
                  want.stride(), out_w, out_h);
        v.conv2d(in.data(), in.stride(), k.data(), kw, kh, got.data(),
                 got.stride(), out_w, out_h);
        for (int oy = 0; oy < out_h; ++oy)
          for (int ox = 0; ox < out_w; ++ox) {
            // Gather the window row-major to compute the per-output bound.
            std::vector<double> win;
            for (int ky = 0; ky < kh; ++ky)
              for (int kx = 0; kx < kw; ++kx)
                win.push_back(in.at(ox + kx, oy + ky));
            EXPECT_LE(std::abs(got.at(ox, oy) - want.at(ox, oy)),
                      dot_bound(win.data(), k.data(), kw * kh))
                << v.name << " k=" << kw << " out_w=" << out_w << " ("
                << ox << "," << oy << ")";
          }
      }
    }
  }
}

TEST(Simd, ReductionsBitExact) {
  const Ops& sc = ops_for(Isa::kScalar);
  std::uint64_t s = 3;
  for (Isa isa : simd_isas()) {
    const Ops& v = ops_for(isa);
    for (int n = 1; n <= kMaxN; ++n) {
      std::vector<double> p = rnd_vec(s, n);
      p[static_cast<size_t>(splitmix(s) % n)] = -0.0;  // signed-zero case
      EXPECT_EQ(v.reduce_min(p.data(), n), sc.reduce_min(p.data(), n))
          << v.name << " n=" << n;
      EXPECT_EQ(v.reduce_max(p.data(), n), sc.reduce_max(p.data(), n))
          << v.name << " n=" << n;
    }
  }
}

TEST(Simd, Morph2dBitExact) {
  const Ops& sc = ops_for(Isa::kScalar);
  std::uint64_t s = 4;
  for (Isa isa : simd_isas()) {
    const Ops& v = ops_for(isa);
    for (const int kw : {1, 3, 5})
      for (int out_w = 1; out_w <= kMaxN; out_w += 5) {
        const int out_h = 2;
        const Tile in = rnd_tile(s, out_w + kw - 1, out_h + kw - 1);
        Tile want(out_w, out_h), got(out_w, out_h);
        sc.erode2d(in.data(), in.stride(), kw, kw, want.data(), want.stride(),
                   out_w, out_h);
        v.erode2d(in.data(), in.stride(), kw, kw, got.data(), got.stride(),
                  out_w, out_h);
        EXPECT_EQ(got.to_vector(), want.to_vector())
            << v.name << " erode k=" << kw << " out_w=" << out_w;
        sc.dilate2d(in.data(), in.stride(), kw, kw, want.data(), want.stride(),
                    out_w, out_h);
        v.dilate2d(in.data(), in.stride(), kw, kw, got.data(), got.stride(),
                   out_w, out_h);
        EXPECT_EQ(got.to_vector(), want.to_vector())
            << v.name << " dilate k=" << kw << " out_w=" << out_w;
      }
  }
}

TEST(Simd, Median9MatchesNthElement) {
  std::uint64_t s = 5;
  // All tables (scalar included) must agree with nth_element, including on
  // duplicate-heavy windows.
  for (int trial = 0; trial < 500; ++trial) {
    double w[9];
    for (double& x : w)
      x = trial % 2 ? static_cast<double>(splitmix(s) % 4) : rnd(s);
    std::vector<double> v(w, w + 9);
    std::nth_element(v.begin(), v.begin() + 4, v.end());
    const double want = v[4];
    EXPECT_EQ(ops_for(Isa::kScalar).median9(w), want) << "trial " << trial;
    for (Isa isa : simd_isas())
      EXPECT_EQ(ops_for(isa).median9(w), want)
          << ops_for(isa).name << " trial " << trial;
  }
}

TEST(Simd, Median3x3BitExact) {
  const Ops& sc = ops_for(Isa::kScalar);
  std::uint64_t s = 6;
  for (Isa isa : simd_isas()) {
    const Ops& v = ops_for(isa);
    for (int out_w = 1; out_w <= kMaxN; out_w += 4) {
      const int out_h = 3;
      const Tile in = rnd_tile(s, out_w + 2, out_h + 2);
      Tile want(out_w, out_h), got(out_w, out_h);
      sc.median3x3_2d(in.data(), in.stride(), want.data(), want.stride(),
                      out_w, out_h);
      v.median3x3_2d(in.data(), in.stride(), got.data(), got.stride(), out_w,
                     out_h);
      EXPECT_EQ(got.to_vector(), want.to_vector())
          << v.name << " out_w=" << out_w;
    }
  }
}

TEST(Simd, Sobel2dBitExact) {
  const Ops& sc = ops_for(Isa::kScalar);
  std::uint64_t s = 7;
  for (Isa isa : simd_isas()) {
    const Ops& v = ops_for(isa);
    for (int out_w = 1; out_w <= kMaxN; out_w += 4) {
      const int out_h = 3;
      const Tile in = rnd_tile(s, out_w + 2, out_h + 2);
      Tile want(out_w, out_h), got(out_w, out_h);
      sc.sobel2d(in.data(), in.stride(), want.data(), want.stride(), out_w,
                 out_h);
      v.sobel2d(in.data(), in.stride(), got.data(), got.stride(), out_w,
                out_h);
      EXPECT_EQ(got.to_vector(), want.to_vector())
          << v.name << " out_w=" << out_w;
    }
  }
}

TEST(Simd, ElementwiseBitExact) {
  const Ops& sc = ops_for(Isa::kScalar);
  std::uint64_t s = 8;
  for (Isa isa : simd_isas()) {
    const Ops& v = ops_for(isa);
    for (int n = 1; n <= kMaxN; ++n) {
      const std::vector<double> a = rnd_vec(s, n);
      const std::vector<double> b = rnd_vec(s, n);
      std::vector<double> want(static_cast<size_t>(n));
      std::vector<double> got(static_cast<size_t>(n));
      const auto check = [&](const char* what) {
        EXPECT_EQ(got, want) << v.name << " " << what << " n=" << n;
      };
      sc.add(a.data(), b.data(), want.data(), n);
      v.add(a.data(), b.data(), got.data(), n);
      check("add");
      sc.sub(a.data(), b.data(), want.data(), n);
      v.sub(a.data(), b.data(), got.data(), n);
      check("sub");
      sc.mul(a.data(), b.data(), want.data(), n);
      v.mul(a.data(), b.data(), got.data(), n);
      check("mul");
      sc.absdiff(a.data(), b.data(), want.data(), n);
      v.absdiff(a.data(), b.data(), got.data(), n);
      check("absdiff");
      sc.abs1(a.data(), want.data(), n);
      v.abs1(a.data(), got.data(), n);
      check("abs");
      sc.scale(a.data(), want.data(), n, 0.3, -7.1);
      v.scale(a.data(), got.data(), n, 0.3, -7.1);
      check("scale");
      // Threshold exactly at a present value: > must stay strict.
      const double level = a[static_cast<size_t>(n) / 2];
      sc.threshold(a.data(), want.data(), n, level);
      v.threshold(a.data(), got.data(), n, level);
      check("threshold");
      sc.clamp(a.data(), want.data(), n, -20.0, 20.0);
      v.clamp(a.data(), got.data(), n, -20.0, 20.0);
      check("clamp");
    }
  }
}

TEST(Simd, FindBinFirstMatchEvenUnsorted) {
  const Ops& sc = ops_for(Isa::kScalar);
  // Deliberately unsorted bounds: first-match semantics, not lower_bound.
  const std::vector<double> uppers = {10.0, 5.0, 30.0, 5.0, 20.0,
                                      1.0,  50.0, 2.0, 40.0};
  const int bins = static_cast<int>(uppers.size());
  std::uint64_t s = 9;
  for (Isa isa : simd_isas()) {
    const Ops& v = ops_for(isa);
    for (int trial = 0; trial < 300; ++trial) {
      const double x = rnd(s) + 64.0;  // spread across [-64, 192)
      EXPECT_EQ(v.find_bin(x, uppers.data(), bins),
                sc.find_bin(x, uppers.data(), bins))
          << v.name << " x=" << x;
    }
    // Boundary values: v == upper goes to the next bin (strict <).
    for (int i = 0; i < bins; ++i) {
      EXPECT_EQ(v.find_bin(uppers[static_cast<size_t>(i)], uppers.data(), bins),
                sc.find_bin(uppers[static_cast<size_t>(i)], uppers.data(), bins));
    }
    EXPECT_EQ(v.find_bin(0.5, uppers.data(), 1), 0) << "single bin";
  }
}

TEST(Simd, FindBinSortedMatchesScanOnSortedBounds) {
  const Ops& sc = ops_for(Isa::kScalar);
  std::uint64_t s = 19;
  for (Isa isa : simd_isas()) {
    const Ops& v = ops_for(isa);
    for (const int bins : {1, 2, 3, 5, 8, 9, 32, 33}) {
      std::vector<double> uppers(static_cast<size_t>(bins));
      for (int i = 0; i < bins; ++i)
        uppers[static_cast<size_t>(i)] = 256.0 * (i + 1) / bins - 128.0;
      for (int trial = 0; trial < 200; ++trial) {
        const double x = rnd(s) * 3.0;  // spread well past both ends
        EXPECT_EQ(v.find_bin_sorted(x, uppers.data(), bins),
                  sc.find_bin(x, uppers.data(), bins))
            << v.name << " bins=" << bins << " x=" << x;
      }
      // Exact bound values: v == upper belongs to the next bin (strict <).
      for (int i = 0; i < bins; ++i)
        EXPECT_EQ(v.find_bin_sorted(uppers[static_cast<size_t>(i)],
                                    uppers.data(), bins),
                  sc.find_bin(uppers[static_cast<size_t>(i)], uppers.data(),
                              bins))
            << v.name << " bins=" << bins << " i=" << i;
      // A NaN sample falls through every bound into the last bin, the
      // same as the early-exit scan.
      const double nan = std::numeric_limits<double>::quiet_NaN();
      EXPECT_EQ(v.find_bin_sorted(nan, uppers.data(), bins), bins - 1)
          << v.name << " bins=" << bins;
    }
    // Duplicate bounds (empty bins) still count consistently.
    const std::vector<double> dup = {1.0, 1.0, 2.0, 2.0, 3.0};
    const int nd = static_cast<int>(dup.size());
    for (const double x : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 9.0})
      EXPECT_EQ(v.find_bin_sorted(x, dup.data(), nd),
                sc.find_bin(x, dup.data(), nd))
          << v.name << " x=" << x;
  }
}

TEST(Simd, Histogram2dBitExact) {
  const Ops& sc = ops_for(Isa::kScalar);
  std::uint64_t s = 10;
  for (Isa isa : simd_isas()) {
    const Ops& v = ops_for(isa);
    for (const int bins : {1, 2, 7, 32}) {
      std::vector<double> uppers(static_cast<size_t>(bins));
      for (int i = 0; i < bins; ++i)
        uppers[static_cast<size_t>(i)] = 256.0 * (i + 1) / bins - 128.0;
      const Tile in = rnd_tile(s, 37, 11);
      std::vector<long> want(static_cast<size_t>(bins), 0);
      std::vector<long> got(static_cast<size_t>(bins), 0);
      sc.histogram2d(in.data(), in.stride(), in.width(), in.height(),
                     uppers.data(), bins, want.data());
      v.histogram2d(in.data(), in.stride(), in.width(), in.height(),
                    uppers.data(), bins, got.data());
      EXPECT_EQ(got, want) << v.name << " bins=" << bins;
    }
  }
}

// Restores the active table even when an assertion fails mid-test.
struct IsaGuard {
  Isa saved = active_isa();
  ~IsaGuard() { set_isa(saved); }
};

// Whole-reference A/B: the composed Figure-1 reference (median, convolve,
// subtract, histogram) under the best SIMD table vs forced scalar. The
// histogram of the difference image is integer counts, so a result is only
// equal if every pipeline stage stayed within tolerance.
TEST(Simd, Figure1ReferenceScalarVsNative) {
  if (detect_best() == Isa::kScalar) GTEST_SKIP() << "no SIMD here";
  IsaGuard guard;
  const Tile frame = ref::make_frame({48, 36}, 0, default_pixel_fn());
  const Tile coeff = apps::blur_coeff5x5();
  std::vector<double> uppers(32);
  for (int i = 0; i < 32; ++i) uppers[static_cast<size_t>(i)] = 8.0 * (i + 1) - 128.0;

  ASSERT_TRUE(set_isa(Isa::kScalar));
  const std::vector<long> want = ref::figure1_histogram(frame, coeff, uppers);
  ASSERT_TRUE(set_isa(detect_best()));
  const std::vector<long> got = ref::figure1_histogram(frame, coeff, uppers);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace bpp::simd
