// Computation kernels vs the golden references: convolution (with
// coefficient reload), median, Sobel, Bayer demosaic, element-wise
// operations, resampling, histogram and merge.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "test_util.h"

namespace bpp {
namespace {

using testutil::ItemSink;
using testutil::px;
using testutil::ScriptedSource;
using testutil::scanline_items;
using testutil::token;

/// Run a single windowed kernel (already fed by a suitable buffer) over one
/// frame and collect the 1x1 outputs row-major.
template <class K, class... Args>
std::vector<double> run_windowed(Size2 frame, Size2 win,
                                 const std::function<double(int, int)>& value,
                                 Args&&... kernel_args) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", scanline_items(frame, value), frame);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, win, Step2{1, 1}, frame);
  auto& k = g.add<K>("k", std::forward<Args>(kernel_args)...);
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", k, "in");
  g.connect(k, "out", sink, "in");
  if (k.input_index("coeff") >= 0) {
    // Identity coefficients unless the caller connects its own source.
    Tile delta(win);
    delta.at(win.w / 2, win.h / 2) = 1.0;
    auto& c = g.add<ConstSource>("coeff", delta);
    g.connect(c, "out", k, "coeff");
  }
  EXPECT_TRUE(run_sequential(g).completed);
  std::vector<double> out;
  for (double v : sink.log)
    if (v > -1000.0) out.push_back(v);
  return out;
}

Tile test_frame(Size2 s, int seed = 0) {
  return ref::make_frame(s, seed, default_pixel_fn());
}

TEST(Convolution, MatchesReferenceWithBlurCoefficients) {
  const Size2 frame{12, 9};
  const Tile img = test_frame(frame);
  const Tile coeff = apps::blur_coeff5x5();

  Graph g;
  auto& src = g.add<ScriptedSource>(
      "src", scanline_items(frame, [&](int x, int y) { return img.at(x, y); }),
      frame);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{5, 5}, Step2{1, 1},
                                  frame);
  auto& conv = g.add<ConvolutionKernel>("conv", 5, 5);
  auto& csrc = g.add<ConstSource>("coeff", coeff);
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", conv, "in");
  g.connect(csrc, "out", conv, "coeff");
  g.connect(conv, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  const Tile want = ref::convolve(img, coeff);
  ASSERT_EQ(sink.data_count(), want.words());
  size_t n = 0;
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x) {
      while (sink.log[n] <= -1000.0) ++n;
      EXPECT_NEAR(sink.log[n++], want.at(x, y), 1e-9);
    }
}

TEST(Convolution, CoefficientReloadMidStream) {
  // Frame 1 convolved with delta, frame 2 with 2*delta: the "coeff" input
  // reloads between frames, exercising shared private state (§II-B).
  const Size2 frame{6, 6};
  std::vector<Item> data;
  for (int f = 0; f < 2; ++f) {
    auto s = scanline_items(frame, [](int x, int y) { return 1.0 + x + y; },
                            false);
    data.insert(data.end(), s.begin(), s.end());
  }
  data.push_back(token(tok::kEndOfStream));

  Tile delta(3, 3);
  delta.at(1, 1) = 1.0;
  Tile twice(3, 3);
  twice.at(1, 1) = 2.0;

  Graph g;
  auto& src = g.add<ScriptedSource>("src", data, frame);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{3, 3}, Step2{1, 1},
                                  frame);
  auto& conv = g.add<ConvolutionKernel>("conv", 3, 3);
  // A scripted source delivering a second coefficient tile after the first.
  auto& csrc = g.add<ScriptedSource>(
      "coeff", std::vector<Item>{delta, twice, token(tok::kEndOfStream)},
      Size2{3, 3});
  // Coefficient granularity: the scripted source claims 1x1; override spec.
  csrc.output_spec(0).window = {3, 3};
  csrc.output_spec(0).step = {3, 3};
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", conv, "in");
  g.connect(csrc, "out", conv, "coeff");
  g.connect(conv, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  std::vector<double> out;
  for (double v : sink.log)
    if (v > -1000.0) out.push_back(v);
  const long per_frame = 16;  // 4x4 iterations
  ASSERT_EQ(static_cast<long>(out.size()), 2 * per_frame);
  // loadCoeff takes priority whenever a tile waits on "coeff", so in the
  // sequential engine both reloads land before the first window: every
  // output is the window center value scaled by 2 (shared private state
  // between methods, §II-B).
  size_t n = 0;
  for (int f = 0; f < 2; ++f)
    for (int wy = 0; wy < 4; ++wy)
      for (int wx = 0; wx < 4; ++wx)
        EXPECT_NEAR(out[n++], 2.0 * (1.0 + (wx + 1) + (wy + 1)), 1e-9);
}

TEST(Median, MatchesReference) {
  const Size2 frame{10, 8};
  const Tile img = test_frame(frame, 3);
  const auto got = run_windowed<MedianKernel>(
      frame, {3, 3}, [&](int x, int y) { return img.at(x, y); }, 3, 3);
  const Tile want = ref::median(img, 3, 3);
  ASSERT_EQ(static_cast<long>(got.size()), want.words());
  size_t n = 0;
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_DOUBLE_EQ(got[n++], want.at(x, y));
}

TEST(Median, FiveByFive) {
  const Size2 frame{9, 9};
  const Tile img = test_frame(frame, 7);
  const auto got = run_windowed<MedianKernel>(
      frame, {5, 5}, [&](int x, int y) { return img.at(x, y); }, 5, 5);
  const Tile want = ref::median(img, 5, 5);
  ASSERT_EQ(static_cast<long>(got.size()), want.words());
  size_t n = 0;
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_DOUBLE_EQ(got[n++], want.at(x, y));
}

TEST(Sobel, MatchesReference) {
  const Size2 frame{9, 7};
  const Tile img = test_frame(frame, 5);
  const auto got = run_windowed<SobelKernel>(
      frame, {3, 3}, [&](int x, int y) { return img.at(x, y); });
  const Tile want = ref::sobel(img);
  ASSERT_EQ(static_cast<long>(got.size()), want.words());
  size_t n = 0;
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_DOUBLE_EQ(got[n++], want.at(x, y));
}

TEST(Elementwise, BinaryOps) {
  Graph g;
  auto& a = g.add<ScriptedSource>(
      "a", std::vector<Item>{px(5), px(2), token(tok::kEndOfStream)});
  auto& b = g.add<ScriptedSource>(
      "b", std::vector<Item>{px(3), px(8), token(tok::kEndOfStream)});
  Kernel& sub = g.add_kernel(make_absdiff("ad"));
  auto& sink = g.add<ItemSink>("sink");
  g.connect(a, "out", sub, "in0");
  g.connect(b, "out", sub, "in1");
  g.connect(sub, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);
  std::vector<double> got;
  for (double v : sink.log)
    if (v > -1000.0) got.push_back(v);
  EXPECT_EQ(got, (std::vector<double>{2, 6}));
}

TEST(Elementwise, UnaryFactories) {
  struct Case {
    std::unique_ptr<UnaryOpKernel> k;
    double in, want;
  };
  std::vector<Case> cases;
  cases.push_back({make_scale("s", 2.0, 1.0), 3.0, 7.0});
  cases.push_back({make_threshold("t", 5.0), 6.0, 1.0});
  cases.push_back({make_threshold("t2", 5.0), 4.0, 0.0});
  cases.push_back({make_clamp("c", 0.0, 10.0), 12.0, 10.0});
  cases.push_back({make_clamp("c2", 0.0, 10.0), -2.0, 0.0});
  for (auto& c : cases) {
    Graph g;
    auto& src = g.add<ScriptedSource>(
        "src", std::vector<Item>{px(c.in), token(tok::kEndOfStream)});
    Kernel& k = g.add_kernel(std::move(c.k));
    auto& sink = g.add<ItemSink>("sink");
    g.connect(src, "out", k, "in");
    g.connect(k, "out", sink, "in");
    ASSERT_TRUE(run_sequential(g).completed);
    ASSERT_EQ(sink.data_count(), 1);
    EXPECT_DOUBLE_EQ(sink.log.front(), c.want);
  }
}

TEST(Bayer, WindowRuleMatchesReference) {
  const Size2 frame{12, 10};
  const Tile mosaic = test_frame(frame, 11);
  const Tile want = ref::bayer_demosaic(mosaic);
  // Direct window check (the streaming path is covered by the app test).
  const Size2 it = iteration_count(frame, {4, 4}, {2, 2});
  for (int wy = 0; wy < it.h; ++wy)
    for (int wx = 0; wx < it.w; ++wx) {
      const Tile cell = BayerDemosaicKernel::demosaic_window(
          mosaic.crop(wx * 2, wy * 2, {4, 4}));
      for (int j = 0; j < 2; ++j)
        for (int i = 0; i < 2; ++i)
          EXPECT_DOUBLE_EQ(cell.at(i, j), want.at(wx * 2 + i, wy * 2 + j));
    }
}

TEST(Sampling, DownsampleAveragesBlocks) {
  const Size2 frame{6, 4};
  const Tile img = test_frame(frame, 2);
  Graph g;
  auto& src = g.add<ScriptedSource>(
      "src", scanline_items(frame, [&](int x, int y) { return img.at(x, y); }),
      frame);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{2, 2}, Step2{2, 2},
                                  frame);
  auto& down = g.add<DownsampleKernel>("down", 2);
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", down, "in");
  g.connect(down, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  const Tile want = ref::downsample(img, 2);
  std::vector<double> got;
  for (double v : sink.log)
    if (v > -1000.0) got.push_back(v);
  ASSERT_EQ(static_cast<long>(got.size()), want.words());
  size_t n = 0;
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_DOUBLE_EQ(got[n++], want.at(x, y));
}

TEST(Sampling, FractionalOffsetDeclared) {
  DownsampleKernel d("d", 2);
  d.ensure_configured();
  EXPECT_EQ(d.input(0).spec.offset, (Offset2{0.5, 0.5}));  // §II-A footnote 2
}

TEST(Histogram, CountsAndFinishesPerFrame) {
  // Two frames of 4 values each; bins configured to [0,10,20,30).
  std::vector<Item> items;
  for (int f = 0; f < 2; ++f) {
    for (double v : {1.0, 11.0, 11.0, 25.0 + f}) items.push_back(px(v));
    items.push_back(token(tok::kEndOfFrame, f));
  }
  items.push_back(token(tok::kEndOfStream));

  Graph g;
  auto& src = g.add<ScriptedSource>("src", items);
  auto& hist = g.add<HistogramKernel>("hist", 3);
  auto& bins = g.add<ConstSource>("bins", HistogramKernel::uniform_bins(3, 0, 30));
  auto& sink = g.add<OutputKernel>("out", Size2{3, 1});
  g.connect(src, "out", hist, "in");
  g.connect(bins, "out", hist, "bins");
  g.connect(hist, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  ASSERT_EQ(sink.tiles().size(), 2u);
  for (const Tile& t : sink.tiles()) {
    EXPECT_EQ(t.at(0, 0), 1.0);  // value 1
    EXPECT_EQ(t.at(1, 0), 2.0);  // the two 11s
    EXPECT_EQ(t.at(2, 0), 1.0);  // 25/26
  }
}

TEST(HistogramMerge, AccumulatesExpectedPartials) {
  HistogramMergeKernel merge("m", 4);
  merge.ensure_configured();
  merge.on_upstream_parallelized(0, 3);
  EXPECT_EQ(merge.expected(), 3);

  ExecContext ctx;
  Tile partial(Size2{4, 1}, 1.0);
  for (int i = 0; i < 2; ++i) {
    ctx.reset();
    Item it = partial;
    ctx.bind_input(0, &it);
    merge.invoke(0, ctx);
    EXPECT_TRUE(ctx.emissions().empty());  // waiting for the third partial
  }
  ctx.reset();
  Item it = partial;
  ctx.bind_input(0, &it);
  merge.invoke(0, ctx);
  ASSERT_EQ(ctx.emissions().size(), 1u);
  EXPECT_EQ(as_tile(ctx.emissions()[0].item).at(2, 0), 3.0);
}

TEST(OutputKernel, ReassemblesFrames) {
  const Size2 frame{4, 3};
  Graph g;
  auto& src = g.add<ScriptedSource>(
      "src", scanline_items(frame, [](int x, int y) { return x + 10.0 * y; }),
      frame);
  auto& out = g.add<OutputKernel>("out");
  g.connect(src, "out", out, "in");
  ASSERT_TRUE(run_sequential(g).completed);
  ASSERT_EQ(out.frames().size(), 1u);
  EXPECT_EQ(out.frames()[0].size(), frame);
  EXPECT_EQ(out.frames()[0].at(3, 2), 23.0);
  EXPECT_TRUE(out.finished());
  EXPECT_EQ(out.tokens_seen(tok::kEndOfLine), 3);
}


TEST(Morphology, ErodeDilateMatchReference) {
  const Size2 frame{10, 8};
  const Tile img = test_frame(frame, 9);
  for (auto op : {MorphologyKernel::Op::Erode, MorphologyKernel::Op::Dilate}) {
    const auto got = run_windowed<MorphologyKernel>(
        frame, {3, 3}, [&](int x, int y) { return img.at(x, y); }, op, 3, 3);
    const Tile want = op == MorphologyKernel::Op::Erode ? ref::erode(img, 3, 3)
                                                        : ref::dilate(img, 3, 3);
    ASSERT_EQ(static_cast<long>(got.size()), want.words());
    size_t n = 0;
    for (int y = 0; y < want.height(); ++y)
      for (int x = 0; x < want.width(); ++x)
        EXPECT_DOUBLE_EQ(got[n++], want.at(x, y));
  }
}

TEST(Morphology, OpeningIsErodeThenDilate) {
  // A morphological opening pipeline through the compiler: erode 3x3 then
  // dilate 3x3, compared against the composed reference.
  const Size2 frame{14, 12};
  Graph g;
  auto& in = g.add<InputKernel>("input", frame, 60.0, 1);
  auto& er = g.add<MorphologyKernel>("erode", MorphologyKernel::Op::Erode, 3, 3);
  auto& di = g.add<MorphologyKernel>("dilate", MorphologyKernel::Op::Dilate, 3, 3);
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", er, "in");
  g.connect(er, "out", di, "in");
  g.connect(di, "out", out, "in");

  CompiledApp app = compile(std::move(g));
  ASSERT_TRUE(run_sequential(app.graph).completed);
  const Tile img = test_frame(frame, 0);
  const Tile want = ref::dilate(ref::erode(img, 3, 3), 3, 3);
  const auto& res = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(res.frames().size(), 1u);
  ASSERT_EQ(res.frames()[0].size(), want.size());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_DOUBLE_EQ(res.frames()[0].at(x, y), want.at(x, y));
}

}  // namespace
}  // namespace bpp
