// Differential tests for the compositional performance predictor
// (src/predict): on deterministic graphs whose machine parameters are
// dyadic rationals (power-of-two clock, quarter-cycle word costs) every
// simulator event time is an exact double, so the predicted steady-state
// period and per-core per-frame busy cycles are asserted bit-identical
// (==) to the simulator — not within a tolerance. The per-frame demand is
// isolated by differencing two runs (F and F+1 frames), which cancels
// warmup and end-of-stream costs exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "kernels/feedback.h"
#include "kernels/kernels.h"
#include "obs/frames.h"
#include "obs/recorder.h"
#include "predict/cost_table.h"
#include "predict/predict.h"
#include "predict/report.h"
#include "runtime/runtime.h"
#include "service/admission.h"
#include "sim/simulator.h"

namespace bpp {
namespace {

/// Dyadic machine: every per-firing cycle count is a multiple of 1/4 and
/// the clock is a power of two, so cycles/clock divisions are exact in
/// IEEE double arithmetic.
MachineSpec dyadic_machine(double clock_hz = 16777216.0 /* 2^24 */) {
  MachineSpec m;
  m.clock_hz = clock_hz;
  m.read_cost = 0.25;
  m.write_cost = 0.25;
  m.context_switch = 2.0;
  return m;
}

enum class StageKind { Sobel, Median3, Scale, Threshold, Down2 };

/// input -> [stages...] -> result, as the compiler sees user graphs. The
/// stage set is restricted to kernels with static cycle counts and no
/// parameter inputs, so the whole chain is exactly analyzable.
Graph make_chain(Size2 frame, double rate, int frames,
                 const std::vector<StageKind>& stages) {
  Graph g;
  Kernel* prev = &g.add<InputKernel>("input", frame, rate, frames);
  int idx = 0;
  for (StageKind s : stages) {
    const std::string n = "stage" + std::to_string(idx++);
    Kernel* k = nullptr;
    switch (s) {
      case StageKind::Sobel:
        k = &g.add<SobelKernel>(n);
        break;
      case StageKind::Median3:
        k = &g.add<MedianKernel>(n, 3, 3);
        break;
      case StageKind::Scale:
        k = &g.add_kernel(make_scale(n, 0.5, 8.0));
        break;
      case StageKind::Threshold:
        k = &g.add_kernel(make_threshold(n, 96.0));
        break;
      case StageKind::Down2:
        k = &g.add<DownsampleKernel>(n, 2);
        break;
    }
    g.connect(*prev, "out", *k, "in");
    prev = k;
  }
  auto& out = g.add<OutputKernel>("result");
  g.connect(*prev, "out", out, "in");
  return g;
}

CompiledApp compile_chain(Size2 frame, double rate, int frames,
                          const std::vector<StageKind>& stages,
                          const MachineSpec& m, bool multiplex = true,
                          bool parallelize = true) {
  CompileOptions opt;
  opt.machine = m;
  opt.multiplex = multiplex;
  opt.parallelize = parallelize;
  return compile(make_chain(frame, rate, frames, stages), opt);
}

SimResult simulate_app(CompiledApp& app) {
  SimOptions so;
  so.machine = app.options.machine;
  return simulate(app.graph, app.mapping, so);
}

/// The core bit-exactness harness: per-core busy cycles and firings of
/// exactly one steady-state frame, isolated by differencing an F-frame and
/// an (F+1)-frame run of the same compiled app, must equal the predicted
/// per-frame numbers with no tolerance at all.
void expect_exact_frame_delta(Size2 frame, double rate, int frames,
                              const std::vector<StageKind>& stages,
                              const MachineSpec& m, bool multiplex = true,
                              bool parallelize = true) {
  CompiledApp base = compile_chain(frame, rate, frames, stages, m, multiplex,
                                   parallelize);
  CompiledApp more = compile_chain(frame, rate, frames + 1, stages, m,
                                   multiplex, parallelize);
  const predict::Prediction pred = predict::predict(base);
  SCOPED_TRACE("exact=" + std::to_string(pred.exact));

  SimResult a = simulate_app(base);
  SimResult b = simulate_app(more);
  ASSERT_TRUE(a.completed) << a.diagnostics;
  ASSERT_TRUE(b.completed) << b.diagnostics;

  ASSERT_TRUE(pred.exact);
  ASSERT_EQ(pred.cores.size(), a.cores.size());
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (size_t c = 0; c < a.cores.size(); ++c) {
    SCOPED_TRACE("core " + std::to_string(c));
    const double delta = b.cores[c].busy_cycles() - a.cores[c].busy_cycles();
    EXPECT_EQ(pred.cores[c].busy_cycles_per_frame, delta);
    double predicted_firings = 0.0;
    for (const auto& kp : pred.kernels)
      if (!kp.is_source &&
          base.mapping.core_of[static_cast<size_t>(kp.kernel)] ==
              static_cast<int>(c))
        predicted_firings += kp.firings;
    EXPECT_EQ(std::lround(predicted_firings),
              b.cores[c].firings - a.cores[c].firings);
  }

  // The steady sink cadence must match bit for bit as well. The last
  // completion also absorbs the end-of-stream tail (EOS forwards interleave
  // with the final frame on multiplexed cores), so the steady window is
  // every consecutive delta except the final one.
  const std::vector<double>* t = b.frame_times();
  ASSERT_NE(t, nullptr);
  ASSERT_GE(t->size(), 3u);
  for (size_t i = 1; i + 1 < t->size(); ++i) {
    SCOPED_TRACE("frame delta " + std::to_string(i));
    EXPECT_EQ(pred.steady_period_seconds, (*t)[i] - (*t)[i - 1]);
  }
  // The averaged measure (which includes that tail) still agrees to within
  // a vanishing relative error.
  EXPECT_NEAR(b.steady_frame_period(), pred.steady_period_seconds,
              1e-4 * pred.steady_period_seconds);
}

TEST(PredictExact, SingleSobelChainFrameDelta) {
  expect_exact_frame_delta({16, 16}, 64.0, 3, {StageKind::Sobel},
                           dyadic_machine());
}

TEST(PredictExact, PointwiseChainFrameDelta) {
  expect_exact_frame_delta({16, 8}, 32.0, 3,
                           {StageKind::Scale, StageKind::Threshold},
                           dyadic_machine());
}

TEST(PredictExact, MixedChainFrameDelta) {
  expect_exact_frame_delta({32, 16}, 16.0, 3,
                           {StageKind::Median3, StageKind::Down2,
                            StageKind::Sobel},
                           dyadic_machine());
}

TEST(PredictExact, OneToOneMappingFrameDelta) {
  expect_exact_frame_delta({16, 16}, 64.0, 3, {StageKind::Sobel},
                           dyadic_machine(), /*multiplex=*/false);
}

TEST(PredictExact, OverloadedChainPacesAtBottleneck) {
  // A clock slow enough that the pipeline cannot hold the input rate, with
  // parallelization disabled so the compiled graph stays exactly
  // analyzable. The predicted (stretched) period must match the steady
  // completion cadence bit for bit, and the verdict must flip.
  const MachineSpec m = dyadic_machine(524288.0 /* 2^19 */);
  CompiledApp app = compile_chain({16, 16}, 64.0, 6,
                                  {StageKind::Median3, StageKind::Sobel}, m,
                                  /*multiplex=*/true, /*parallelize=*/false);
  const predict::Prediction pred = predict::predict(app);
  ASSERT_TRUE(pred.exact);
  ASSERT_GT(pred.bottleneck_utilization, 1.0);
  EXPECT_FALSE(pred.meets_realtime);
  EXPECT_GT(pred.steady_period_seconds, pred.input_period_seconds);
  EXPECT_FALSE(pred.meets_deadline(pred.input_period_seconds));
  EXPECT_TRUE(pred.meets_deadline(pred.steady_period_seconds));

  SimResult r = simulate_app(app);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  const std::vector<double>* t = r.frame_times();
  ASSERT_NE(t, nullptr);
  ASSERT_GE(t->size(), 4u);
  // Skip the first delta (warmup backlog forming) and the last (EOS tail).
  for (size_t i = 2; i + 1 < t->size(); ++i) {
    SCOPED_TRACE("frame delta " + std::to_string(i));
    EXPECT_EQ(pred.steady_period_seconds, (*t)[i] - (*t)[i - 1]);
  }
}

// ---------------------------------------------------------------------------
// Composition rules: the per-kernel arithmetic the predictor is built on.

TEST(PredictComposition, BusyCyclesComposeFromParts) {
  // busy = context_switch * firings + read/write word costs + run cycles,
  // for every non-source kernel — the machine model applied termwise.
  CompiledApp app = compile_chain({16, 16}, 64.0, 3,
                                  {StageKind::Median3, StageKind::Sobel},
                                  dyadic_machine());
  const predict::Prediction pred = predict::predict(app);
  ASSERT_TRUE(pred.exact);
  int checked = 0;
  for (const auto& kp : pred.kernels) {
    if (kp.is_source) continue;
    EXPECT_DOUBLE_EQ(kp.busy_cycles,
                     2.0 * kp.firings + 0.25 * (kp.read_words + kp.write_words) +
                         kp.run_cycles)
        << kp.name;
    ++checked;
  }
  EXPECT_GE(checked, 4);  // 2 stages + at least 1 buffer + sink
}

TEST(PredictComposition, TokenForwardsOnlyOnForwardingKernels) {
  // Compute kernels have no token methods, so the predictor must model
  // their end-of-line/end-of-frame forwards; buffers and sinks consume
  // tokens in real methods and must show none.
  CompiledApp app = compile_chain({16, 16}, 64.0, 3, {StageKind::Sobel},
                                  dyadic_machine());
  const predict::Prediction pred = predict::predict(app);
  ASSERT_TRUE(pred.exact);
  for (const auto& kp : pred.kernels) {
    if (kp.is_source) continue;
    if (kp.name.rfind("stage", 0) == 0) {
      EXPECT_GT(kp.forwards, 0.0) << kp.name;
      // Each forward is one extra firing with a 2-cycle FSM step.
      EXPECT_GT(kp.firings, kp.forwards) << kp.name;
    } else {
      EXPECT_EQ(kp.forwards, 0.0) << kp.name;
    }
  }
}

TEST(PredictComposition, FanoutWritesChargePerChannel) {
  // The analysis prices writes per port; the engines charge per out-CHANNEL.
  // A producer feeding two consumers must be billed twice.
  auto build = [](int consumers) {
    Graph g;
    auto& in = g.add<InputKernel>("input", Size2{16, 8}, 32.0, 3);
    Kernel& scale = g.add_kernel(make_scale("fanned", 0.5, 8.0));
    g.connect(in, "out", scale, "in");
    for (int i = 0; i < consumers; ++i) {
      const std::string n = std::to_string(i);
      Kernel& thr = g.add_kernel(make_threshold("thr" + n, 96.0));
      auto& out = g.add<OutputKernel>("result" + n);
      g.connect(scale, "out", thr, "in");
      g.connect(thr, "out", out, "in");
    }
    CompileOptions opt;
    opt.machine = dyadic_machine();
    return compile(std::move(g), opt);
  };
  CompiledApp one = build(1);
  CompiledApp two = build(2);
  const predict::Prediction p1 = predict::predict(one);
  const predict::Prediction p2 = predict::predict(two);
  ASSERT_TRUE(p1.exact);
  ASSERT_TRUE(p2.exact);
  auto writes_of = [](const predict::Prediction& p, const std::string& name) {
    for (const auto& kp : p.kernels)
      if (kp.name == name) return kp.write_words;
    ADD_FAILURE() << name << " not predicted";
    return 0.0;
  };
  EXPECT_DOUBLE_EQ(writes_of(p2, "fanned"), 2.0 * writes_of(p1, "fanned"));
}

TEST(PredictComposition, SourcesAreFree) {
  // Sources model the sensor: scheduled off-core, zero demand, excluded
  // from the bottleneck.
  CompiledApp app = compile_chain({16, 16}, 64.0, 3, {StageKind::Sobel},
                                  dyadic_machine());
  const predict::Prediction pred = predict::predict(app);
  bool saw_source = false;
  for (const auto& kp : pred.kernels)
    if (kp.is_source) {
      saw_source = true;
      EXPECT_EQ(kp.busy_cycles, 0.0) << kp.name;
      EXPECT_EQ(kp.utilization, 0.0) << kp.name;
    }
  EXPECT_TRUE(saw_source);
  for (const auto& cp : pred.cores)
    if (cp.source_only) EXPECT_NE(cp.core, pred.bottleneck_core);
}

// ---------------------------------------------------------------------------
// Calibration: the microbench cost table.

TEST(PredictCostTable, LongestContainedKeyWins) {
  predict::CostTable t;
  t.set("conv", 10.0);
  t.set("conv2d_3x3", 20.0);
  EXPECT_DOUBLE_EQ(t.cycles_for("blur_conv2d_3x3_1"), 20.0);
  EXPECT_DOUBLE_EQ(t.cycles_for("deconv_stage"), 10.0);
  EXPECT_LT(t.cycles_for("median_3x3"), 0.0);
  EXPECT_EQ(t.size(), 2u);
}

TEST(PredictCostTable, ParseBenchCostsFiltersIsaAndScalesUnits) {
  const std::string json = R"({"benchmarks": [
    {"name": "sobel/scalar", "real_time": 1000.0, "time_unit": "ns"},
    {"name": "sobel/avx2", "real_time": 250.0, "time_unit": "ns"},
    {"name": "median_3x3/scalar", "real_time": 2.0, "time_unit": "us"},
    {"name": "noslash", "real_time": 5.0, "time_unit": "ns"}
  ]})";
  const predict::CostTable t = predict::parse_bench_costs(json, "scalar", 1e9);
  EXPECT_EQ(t.size(), 2u);  // avx2 entry and the slashless name skipped
  EXPECT_DOUBLE_EQ(t.cycles_for("sobel"), 1000.0);     // 1000ns at 1GHz
  EXPECT_DOUBLE_EQ(t.cycles_for("median_3x3"), 2000.0);  // 2us at 1GHz
  const predict::CostTable v = predict::parse_bench_costs(json, "avx2", 1e9);
  EXPECT_DOUBLE_EQ(v.cycles_for("sobel"), 250.0);
}

TEST(PredictCostTable, ParseBenchCostsThrowsOnMalformedJson) {
  EXPECT_THROW(predict::parse_bench_costs("not json at all", "scalar", 1e6),
               Error);
}

TEST(PredictCostTable, CalibrationOverridesMatchingKernelsOnly) {
  CompiledApp app = compile_chain({16, 16}, 64.0, 3, {StageKind::Sobel},
                                  dyadic_machine());
  const predict::Prediction plain = predict::predict(app);
  predict::PredictOptions opt;
  opt.costs.set("stage", 1.0e6);  // absurdly expensive measured cost
  const predict::Prediction cal = predict::predict(app, opt);
  for (size_t i = 0; i < cal.kernels.size(); ++i) {
    const auto& kp = cal.kernels[i];
    // Containment matching: "stage" also hits the inserted
    // "buffer_stage0_in", exactly as a family key is meant to.
    if (kp.name.find("stage") != std::string::npos) {
      EXPECT_TRUE(kp.calibrated) << kp.name;
      EXPECT_GT(kp.utilization, plain.kernels[i].utilization) << kp.name;
    } else {
      EXPECT_FALSE(kp.calibrated) << kp.name;
      EXPECT_DOUBLE_EQ(kp.busy_cycles, plain.kernels[i].busy_cycles)
          << kp.name;
    }
  }
  EXPECT_GT(cal.bottleneck_utilization, plain.bottleneck_utilization);
}

// ---------------------------------------------------------------------------
// Deadline verdicts.

TEST(PredictVerdict, UnderloadedMeetsExactlyItsPeriod) {
  CompiledApp app = compile_chain({16, 16}, 64.0, 3, {StageKind::Scale},
                                  dyadic_machine());
  const predict::Prediction pred = predict::predict(app);
  ASSERT_LE(pred.bottleneck_utilization, 1.0);
  EXPECT_TRUE(pred.meets_realtime);
  EXPECT_EQ(pred.steady_period_seconds, pred.input_period_seconds);
  EXPECT_TRUE(pred.meets_deadline(pred.input_period_seconds));
  EXPECT_TRUE(pred.meets_deadline(2.0 * pred.input_period_seconds));
  EXPECT_FALSE(pred.meets_deadline(0.5 * pred.input_period_seconds));
  EXPECT_GT(pred.critical_path_seconds, pred.input_period_seconds);
}

// ---------------------------------------------------------------------------
// The admission cross-check: the LoadMap ledger and the predictor price
// the same compiled app by independent routes and must agree.

TEST(PredictCrossCheck, AgreesWithAdmissionLedgerAcrossApps) {
  const char* names[] = {"bayer", "histogram", "sobel", "pipeline",
                         "feedback"};
  for (const char* name : names) {
    SCOPED_TRACE(name);
    CompiledApp app =
        compile(apps::named_app(name, {48, 36}, 120.0, 2, 32));
    const std::vector<double> ledger = service::vcore_utilization(
        app.graph, app.loads, app.mapping, app.options.machine);
    const service::PredictionCrossCheck x =
        service::cross_check_prediction(app, ledger);
    EXPECT_TRUE(x.consistent)
        << "predictor deviates " << x.max_abs_deviation << " PE";
    EXPECT_GT(x.predicted_period_seconds, 0.0);
  }
}

// ---------------------------------------------------------------------------
// The shared table formatter and the prediction report.

TEST(PredictReport, TextTableAlignsDeclaredColumns) {
  TextTable t;
  t.column("name", TextTable::Align::Left);
  t.column("value");
  t.row({"a", "1.5"});
  t.row({"longer", "10.25"});
  std::ostringstream os;
  t.write(os);
  EXPECT_EQ(os.str(),
            "  name    value\n"
            "  a         1.5\n"
            "  longer  10.25\n");
}

TEST(PredictReport, TextTableRejectsRowsWiderThanHeader) {
  TextTable t;
  t.column("only");
  EXPECT_THROW(t.row({"a", "b"}), Error);
  TextTable untyped;
  EXPECT_THROW(untyped.row({"cell"}), Error);  // rows before columns
}

TEST(PredictReport, ComparisonRendersAbsentMeasurementsAsDash) {
  const double nan = std::nan("");
  const std::string s = comparison_string(
      {{"steady period (us)", 125.0, 125.0, nan, 2},
       {"avg utilization (%)", 42.5, nan, nan, 1}});
  EXPECT_NE(s.find("steady period (us)"), std::string::npos);
  EXPECT_NE(s.find("125.00"), std::string::npos);
  EXPECT_NE(s.find("42.5"), std::string::npos);
  EXPECT_NE(s.find('-'), std::string::npos);
  EXPECT_EQ(s.find("nan"), std::string::npos);
}

TEST(PredictReport, PredictionStringStatesTheVerdict) {
  CompiledApp app = compile_chain({16, 16}, 64.0, 3, {StageKind::Sobel},
                                  dyadic_machine());
  const std::string s =
      predict::prediction_string(predict::predict(app));
  EXPECT_NE(s.find("performance prediction"), std::string::npos);
  EXPECT_NE(s.find("exact composition"), std::string::npos);
  EXPECT_NE(s.find("bottleneck"), std::string::npos);
  EXPECT_NE(s.find("verdict: meets real time"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The Fig. 13 benchmark suite: predictor vs simulator within the
// documented tolerance (DESIGN.md §7) on every paper benchmark.

/// Stated accuracy bound vs the simulator on the benchmark suite; the
/// CI accuracy gate uses the same number.
constexpr double kSimTolerance = 0.005;

struct SuiteCase {
  const char* name;
  Graph (*build)();
};

Graph suite_bayer() { return apps::bayer_app({64, 48}, 150.0, 4); }
Graph suite_bayer_fast() { return apps::bayer_app({64, 48}, 450.0, 4); }
Graph suite_hist() { return apps::histogram_app({64, 48}, 150.0, 4, 32); }
Graph suite_hist_fast() { return apps::histogram_app({64, 48}, 450.0, 4, 32); }
Graph suite_parbuf() { return apps::parallel_buffer_app({64, 24}, 90.0, 4); }
Graph suite_mconv() { return apps::multi_convolution_app({48, 36}, 150.0, 4); }
Graph suite_fig11_ss() { return apps::figure1_app({48, 36}, 180.0, 4, 64); }
Graph suite_fig11_sf() { return apps::figure1_app({48, 36}, 420.0, 4, 64); }
Graph suite_fig11_bs() { return apps::figure1_app({96, 72}, 60.0, 4, 64); }
Graph suite_fig11_bf() { return apps::figure1_app({96, 72}, 130.0, 4, 64); }
Graph suite_fig1b() { return apps::figure1_app({64, 48}, 150.0, 4, 64); }

const SuiteCase kFig13Suite[] = {
    {"bayer", suite_bayer},         {"bayer_fast", suite_bayer_fast},
    {"histogram", suite_hist},      {"histogram_fast", suite_hist_fast},
    {"parallel_buffer", suite_parbuf}, {"multi_conv", suite_mconv},
    {"fig11_SS", suite_fig11_ss},   {"fig11_SF", suite_fig11_sf},
    {"fig11_BS", suite_fig11_bs},   {"fig11_BF", suite_fig11_bf},
    {"fig1b", suite_fig1b},
};

class Fig13Predict : public ::testing::TestWithParam<SuiteCase> {};

TEST_P(Fig13Predict, PeriodWithinDocumentedToleranceOfSimulator) {
  CompiledApp app = compile(GetParam().build());
  const predict::Prediction pred = predict::predict(app);
  SimResult r = simulate_app(app);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  const double sim = r.steady_frame_period();
  ASSERT_GT(sim, 0.0);
  EXPECT_NEAR(pred.steady_period_seconds, sim, kSimTolerance * sim);
  // The suite runs under the greedy mapping's utilization budget, so the
  // predictor must conclude the schedule closes. (The simulator's own
  // realtime_met flag is stricter — it also trips on transient warmup
  // input lag — so it is not asserted here.)
  EXPECT_TRUE(pred.meets_realtime);
}

INSTANTIATE_TEST_SUITE_P(
    Suite, Fig13Predict, ::testing::ValuesIn(kFig13Suite),
    [](const ::testing::TestParamInfo<SuiteCase>& i) { return i.param.name; });

// ---------------------------------------------------------------------------
// Differential property tests over the randomized-pipeline generator:
// every shape (windowed/trimmed chains, resampling, two-branch fan-out,
// feedback) must predict within the documented tolerance of the
// simulator, across seeds and machine pressures.

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One random stage; windowed picks exercise trim alignment, Down2
/// exercises resampling.
Kernel* random_stage(Graph& g, std::uint64_t pick, int idx, Size2& left) {
  const std::string n = "stage" + std::to_string(idx);
  switch (pick % 7) {
    case 0: {
      auto& k = g.add<ConvolutionKernel>(n, 3, 3);
      g.connect(g.add<ConstSource>(n + "_c", apps::blur_coeff3x3()), "out", k,
                "coeff");
      left = {left.w - 2, left.h - 2};
      return &k;
    }
    case 1: {
      auto& k = g.add<ConvolutionKernel>(n, 5, 5);
      g.connect(g.add<ConstSource>(n + "_c", apps::blur_coeff5x5()), "out", k,
                "coeff");
      left = {left.w - 4, left.h - 4};
      return &k;
    }
    case 2:
      left = {left.w - 2, left.h - 2};
      return &g.add<MedianKernel>(n, 3, 3);
    case 3:
      left = {left.w - 2, left.h - 2};
      return &g.add<SobelKernel>(n);
    case 4:
      return &g.add_kernel(make_scale(n, 0.5, 8.0));
    case 5:
      return &g.add_kernel(make_threshold(n, 96.0));
    default:
      if (left.w % 2 || left.h % 2) return &g.add_kernel(make_scale(n, 1, 0));
      left = {left.w / 2, left.h / 2};
      return &g.add<DownsampleKernel>(n, 2);
  }
}

void expect_prediction_tracks_simulator(CompiledApp& app, int seed) {
  const predict::Prediction pred = predict::predict(app);
  SimResult r = simulate_app(app);
  ASSERT_TRUE(r.completed) << "seed " << seed << ": " << r.diagnostics;
  const double sim = r.steady_frame_period();
  ASSERT_GT(sim, 0.0) << "seed " << seed;
  EXPECT_NEAR(pred.steady_period_seconds, sim, kSimTolerance * sim)
      << "seed " << seed << " exact=" << pred.exact
      << " util=" << pred.bottleneck_utilization;
}

class RandomChainPredict : public ::testing::TestWithParam<int> {};

TEST_P(RandomChainPredict, PeriodAgreesWithSimulator) {
  const int seed = GetParam();
  std::uint64_t rng = 0xC0FFEE ^ (static_cast<std::uint64_t>(seed) << 20);
  const Size2 frame{static_cast<int>(24 + splitmix(rng) % 16),
                    static_cast<int>(20 + splitmix(rng) % 10)};
  const double rate = 50.0 + static_cast<double>(splitmix(rng) % 300);
  Graph g;
  Kernel* prev = &g.add<InputKernel>("input", frame, rate, 5);
  Size2 left = frame;
  const int n = 1 + static_cast<int>(splitmix(rng) % 4);
  for (int i = 0; i < n && left.w > 10 && left.h > 10; ++i) {
    Kernel* k = random_stage(g, splitmix(rng), i, left);
    g.connect(*prev, "out", *k, "in");
    prev = k;
  }
  auto& out = g.add<OutputKernel>("result");
  g.connect(*prev, "out", out, "in");
  CompileOptions opt;
  const std::uint64_t m = splitmix(rng);
  if (m & 1) opt.machine.clock_hz /= 2;  // vary the pressure
  if (m & 2) opt.reuse_opt = true;
  CompiledApp app = compile(std::move(g), opt);
  expect_prediction_tracks_simulator(app, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainPredict, ::testing::Range(0, 8));

class RandomFanoutPredict : public ::testing::TestWithParam<int> {};

TEST_P(RandomFanoutPredict, PeriodAgreesWithSimulator) {
  // input fans out to two windowed branches with different halos (the
  // alignment pass trims); a subtract joins them.
  const int seed = GetParam();
  std::uint64_t rng = 0xBEEF ^ (static_cast<std::uint64_t>(seed) << 18);
  const Size2 frame{static_cast<int>(26 + splitmix(rng) % 12),
                    static_cast<int>(24 + splitmix(rng) % 8)};
  Graph g;
  auto& in = g.add<InputKernel>("input", frame, 60.0, 5);
  Size2 l1 = frame, l2 = frame;
  Kernel* a = random_stage(g, splitmix(rng) % 4, 0, l1);
  Kernel* b = random_stage(g, splitmix(rng) % 4, 1, l2);
  Kernel& sub = g.add_kernel(make_subtract("diff"));
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", *a, "in");
  g.connect(in, "out", *b, "in");
  g.connect(*a, "out", sub, "in0");
  g.connect(*b, "out", sub, "in1");
  g.connect(sub, "out", out, "in");
  CompileOptions opt;
  if (splitmix(rng) & 1) opt.machine.clock_hz /= 2;
  CompiledApp app = compile(std::move(g), opt);
  expect_prediction_tracks_simulator(app, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFanoutPredict, ::testing::Range(0, 8));

class RandomFeedbackPredict : public ::testing::TestWithParam<int> {};

TEST_P(RandomFeedbackPredict, PeriodAgreesWithSimulator) {
  // y_t = alpha x_t + (1-alpha) y_{t-1} right after the source, then a
  // random suffix: the predictor must skip the back edge when walking
  // the critical path yet still price the loop kernels.
  const int seed = GetParam();
  std::uint64_t rng = 0xFEEDB ^ (static_cast<std::uint64_t>(seed) << 19);
  const Size2 frame{static_cast<int>(20 + splitmix(rng) % 12),
                    static_cast<int>(18 + splitmix(rng) % 8)};
  const double rate = 40.0 + static_cast<double>(splitmix(rng) % 100);
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, rate, 5);
  auto& mix = g.add<TemporalMixKernel>("mix", 0.25);
  auto& init = g.add<InitialValueKernel>("loopInit", frame, rate, 0.0);
  g.connect(input, "out", mix, "x");
  g.connect(init, "out", mix, "prev");
  g.connect(mix, "out", init, "in");
  Kernel* prev = &mix;
  Size2 left = frame;
  const int n = 1 + static_cast<int>(splitmix(rng) % 3);
  for (int i = 0; i < n && left.w > 10 && left.h > 10; ++i) {
    Kernel* k = random_stage(g, splitmix(rng), i, left);
    g.connect(*prev, "out", *k, "in");
    prev = k;
  }
  auto& out = g.add<OutputKernel>("result");
  g.connect(*prev, "out", out, "in");
  CompileOptions opt;
  if (splitmix(rng) & 1) opt.machine.clock_hz /= 2;
  CompiledApp app = compile(std::move(g), opt);
  expect_prediction_tracks_simulator(app, seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomFeedbackPredict, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// The threaded host runtime: wall-clock cadence of a paced run must land
// within the (much looser — the host is not the model machine) documented
// runtime tolerance of the prediction.

TEST(PredictRuntime, PacedHostRunTracksPredictedPeriod) {
  // 25% runtime tolerance (DESIGN.md §7): scheduler jitter and the
  // recorder make host wall-clock cadence far noisier than the simulator.
  constexpr double kRunTolerance = 0.25;
  if (!obs::kCompiledIn) GTEST_SKIP() << "needs the observability layer";
  CompileOptions opt;
  CompiledApp app = compile(
      make_chain({24, 20}, 50.0, 6, {StageKind::Scale, StageKind::Sobel}),
      opt);
  const predict::Prediction pred = predict::predict(app);
  ASSERT_TRUE(pred.meets_realtime);  // 50 Hz is easy for the host
  obs::Recorder rec;
  RuntimeOptions ropt;
  ropt.pace_inputs = true;
  ropt.recorder = &rec;
  const RuntimeResult r = run_threaded(app.graph, app.mapping, ropt);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  const obs::FrameReport frames = obs::analyze_frames(rec.trace());
  ASSERT_GT(frames.period.count, 0);
  EXPECT_NEAR(frames.period.mean, pred.steady_period_seconds,
              kRunTolerance * pred.steady_period_seconds);
}

}  // namespace
}  // namespace bpp
