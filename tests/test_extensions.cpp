// Extension features: user control tokens with declared rates (§II-C),
// mirror padding (§III-C), and dynamic resource bounds with runtime
// exceptions (the conclusions' future work).

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"
#include "test_util.h"

namespace bpp {
namespace {

using testutil::ItemSink;
using testutil::ScriptedSource;
using testutil::scanline_items;

// ---------------------------------------------------- user control tokens

Graph event_app(Size2 frame, double rate, int frames, double level,
                double max_events, long handler_cycles = 500) {
  Graph g;
  auto& in = g.add<InputKernel>("input", frame, rate, frames);
  auto& det = g.add<EventDetectKernel>("detect", level, max_events);
  auto& hand = g.add<EventHandlerKernel>("handler", handler_cycles);
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", det, "in");
  g.connect(det, "out", hand, "in");
  g.connect(hand, "out", out, "in");
  return g;
}

TEST(UserTokens, EmittedInOrderAndHandled) {
  Graph g = event_app({16, 8}, 50.0, 2, 150.0, 16.0);
  ASSERT_TRUE(run_sequential(g).completed);
  const auto& det = dynamic_cast<const EventDetectKernel&>(g.by_name("detect"));
  const auto& hand = dynamic_cast<const EventHandlerKernel&>(g.by_name("handler"));
  EXPECT_GT(det.events_emitted(), 0);
  EXPECT_EQ(hand.events_handled(), det.events_emitted());
  // The handler's recalibration (shared private state) took effect.
  EXPECT_LT(hand.gain(), 1.0);
}

TEST(UserTokens, RateBoundIsEnforced) {
  // Level 0 would fire on nearly every rising pixel; the declared bound
  // caps emissions per frame, excess crossings are suppressed.
  Graph g = event_app({16, 8}, 50.0, 2, 120.0, 2.0);
  ASSERT_TRUE(run_sequential(g).completed);
  const auto& det = dynamic_cast<const EventDetectKernel&>(g.by_name("detect"));
  EXPECT_LE(det.events_emitted(), 2 * 2);  // <= bound x frames
  EXPECT_GT(det.events_suppressed(), 0);
}

TEST(UserTokens, UndeclaredEmissionRejected) {
  class Rogue final : public Kernel {
   public:
    Rogue() : Kernel("rogue") {}
    void configure() override {
      create_input("in", {1, 1});
      create_output("out", {1, 1});
      auto& m = register_method("m", Resources{2, 0}, &Rogue::fire);
      method_input(m, "in");
      method_output(m, "out");
    }
    [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
      return std::make_unique<Rogue>(*this);
    }

   private:
    void fire() { emit_token("out", tok::kFirstUser + 3); }  // undeclared!
  };
  Rogue k;
  k.ensure_configured();
  ExecContext ctx;
  Item in = testutil::px(1);
  ctx.bind_input(0, &in);
  EXPECT_THROW(k.invoke(0, ctx), ExecutionError);
}

TEST(UserTokens, DataflowBudgetsHandlerCost) {
  // §II-C: the handler's cycles are charged at the declared maximum rate.
  Graph g = event_app({16, 8}, 50.0, 1, 200.0, /*max_events=*/8.0,
                      /*handler_cycles=*/500);
  const DataflowResult df = analyze(g);
  const KernelId h = g.find("handler");
  const StreamInfo& s = df.channel[static_cast<size_t>(*g.in_channel(h, 0))];
  EXPECT_DOUBLE_EQ(s.token_rate(tok::kThresholdEvent), 8.0);
  const KernelAnalysis& a = df.kernel[static_cast<size_t>(h)];
  // pass: 6 cycles x 128 pixels; onEvent: 500 x 8.
  EXPECT_EQ(a.cycles_per_frame, 6L * 128 + 500L * 8);
}

TEST(UserTokens, RatesForwardThroughUnrelatedKernels) {
  // A scale kernel between detector and handler forwards the token and
  // its declared rate.
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{16, 8}, 50.0, 1);
  auto& det = g.add<EventDetectKernel>("detect", 200.0, 4.0);
  Kernel& mid = g.add_kernel(make_scale("mid", 1.0, 0.0));
  auto& hand = g.add<EventHandlerKernel>("handler");
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", det, "in");
  g.connect(det, "out", mid, "in");
  g.connect(mid, "out", hand, "in");
  g.connect(hand, "out", out, "in");
  const DataflowResult df = analyze(g);
  const StreamInfo& s =
      df.channel[static_cast<size_t>(*g.in_channel(g.find("handler"), 0))];
  EXPECT_DOUBLE_EQ(s.token_rate(tok::kThresholdEvent), 4.0);
  // End-to-end: events survive the middle kernel.
  ASSERT_TRUE(run_sequential(g).completed);
  EXPECT_EQ(dynamic_cast<const EventHandlerKernel&>(g.by_name("handler"))
                .events_handled(),
            dynamic_cast<const EventDetectKernel&>(g.by_name("detect"))
                .events_emitted());
}

TEST(UserTokens, DeclarationValidation) {
  EXPECT_THROW(EventDetectKernel("d", 1.0, 0.0), GraphError);  // no rate
  class ReservedClass final : public Kernel {
   public:
    ReservedClass() : Kernel("r") {}
    void configure() override {
      create_input("in", {1, 1});
      create_output("out", {1, 1});
      auto& m = register_method("m", Resources{1, 0}, &ReservedClass::noop);
      method_input(m, "in");
      method_output(m, "out");
      method_token_output(m, "out", tok::kEndOfFrame, 1.0);  // reserved!
    }
    [[nodiscard]] std::unique_ptr<Kernel> clone() const override { return nullptr; }

   private:
    void noop() {}
  };
  ReservedClass k;
  EXPECT_THROW(k.ensure_configured(), GraphError);
}

// ------------------------------------------------------------ mirror pad

struct MirrorCase {
  Size2 frame;
  Border border;
};

class MirrorPad : public ::testing::TestWithParam<MirrorCase> {};

TEST_P(MirrorPad, MatchesTilePadded) {
  const auto& c = GetParam();
  auto value = [](int x, int y) { return 1.0 + 3 * x + 17 * y; };
  Graph g;
  auto& src = g.add<ScriptedSource>("src", scanline_items(c.frame, value), c.frame);
  auto& pad = g.add<MirrorPadKernel>("mpad", c.border, c.frame);
  auto& out = g.add<OutputKernel>("result");
  g.connect(src, "out", pad, "in");
  g.connect(pad, "out", out, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  Tile in(c.frame);
  for (int y = 0; y < c.frame.h; ++y)
    for (int x = 0; x < c.frame.w; ++x) in.at(x, y) = value(x, y);
  const Tile want = in.padded(c.border, /*mirror=*/true);
  ASSERT_EQ(out.frames().size(), 1u);
  EXPECT_EQ(out.frames()[0], want);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MirrorPad,
    ::testing::Values(MirrorCase{{6, 5}, {1, 1, 1, 1}},
                      MirrorCase{{6, 5}, {2, 3, 1, 0}},
                      MirrorCase{{4, 4}, {3, 3, 3, 3}},
                      MirrorCase{{8, 2}, {0, 1, 0, 1}},
                      MirrorCase{{5, 7}, {4, 0, 0, 6}}));

TEST(MirrorPadKernel, RejectsOversizedBorder) {
  EXPECT_THROW(MirrorPadKernel("m", {6, 0, 0, 0}, {6, 6}), GraphError);
}

TEST(MirrorPadKernel, MultiFrame) {
  const Size2 frame{5, 4};
  std::vector<Item> items;
  for (int f = 0; f < 2; ++f) {
    auto s = scanline_items(frame, [f](int x, int y) { return f * 50 + x + 7 * y; },
                            false);
    items.insert(items.end(), s.begin(), s.end());
  }
  items.push_back(testutil::token(tok::kEndOfStream));
  Graph g;
  auto& src = g.add<ScriptedSource>("src", items, frame);
  auto& pad = g.add<MirrorPadKernel>("mpad", Border{1, 1, 1, 1}, frame);
  auto& out = g.add<OutputKernel>("result");
  g.connect(src, "out", pad, "in");
  g.connect(pad, "out", out, "in");
  ASSERT_TRUE(run_sequential(g).completed);
  ASSERT_EQ(out.frames().size(), 2u);
  EXPECT_EQ(out.frames()[0].size(), (Size2{7, 6}));
}

TEST(MirrorPadPolicy, AlignsAndMatchesReference) {
  const Size2 frame{20, 16};
  CompileOptions opt;
  opt.machine = machines::roomy();
  opt.align_policy = AlignPolicy::MirrorPad;
  CompiledApp app = compile(apps::figure1_app(frame, 25.0, 1, 16), opt);
  // A mirrorpad kernel was inserted upstream of the convolution.
  bool found = false;
  for (int k = 0; k < app.graph.kernel_count(); ++k)
    found = found ||
            dynamic_cast<const MirrorPadKernel*>(&app.graph.kernel(k)) != nullptr;
  ASSERT_TRUE(found);
  ASSERT_TRUE(run_sequential(app.graph).completed);

  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const auto want = ref::figure1_histogram_mirror_padded(
      img, apps::blur_coeff5x5(), apps::diff_bins(16));
  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(out.tiles().size(), 1u);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(static_cast<long>(out.tiles()[0].at(i, 0)), want[static_cast<size_t>(i)])
        << "bin " << i;
}

TEST(MirrorPadPolicy, DiffersFromZeroPad) {
  const Size2 frame{20, 16};
  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const auto zero = ref::figure1_histogram_padded(img, apps::blur_coeff5x5(),
                                                  apps::diff_bins(16));
  const auto mirror = ref::figure1_histogram_mirror_padded(
      img, apps::blur_coeff5x5(), apps::diff_bins(16));
  EXPECT_NE(zero, mirror);
}

// --------------------------------------------- dynamic resource bounds

Graph motion_app(Size2 frame, double rate, int frames, long bound = 0) {
  Graph g;
  auto& in = g.add<InputKernel>("input", frame, rate, frames);
  auto& buf = g.add<BufferKernel>("blocks", Size2{1, 1}, Size2{4, 4},
                                  Step2{4, 4}, frame);
  auto& mot = g.add<MotionEstimateKernel>("motion", frame, 2, bound);
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", buf, "in");
  g.connect(buf, "out", mot, "in");
  g.connect(mot, "out", out, "in");
  return g;
}

TEST(DynamicResources, MotionSearchRunsAndReportsVectors) {
  Graph g = motion_app({16, 16}, 50.0, 3);
  ASSERT_TRUE(run_sequential(g).completed);
  const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("result"));
  // 16 blocks per frame, 3 frames of magnitudes (frame 0 searches nothing).
  EXPECT_EQ(out.tiles().size(), 48u);
}

TEST(DynamicResources, WithinWorstCaseBoundNoExceptions) {
  Graph g = motion_app({16, 16}, 50.0, 3);  // bound = worst case
  const SimResult r = simulate(g, map_one_to_one(g), SimOptions{});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.resource_exception_count, 0);
}

TEST(DynamicResources, TightBoundRaisesRuntimeExceptions) {
  // Allocate far less than the search can use: the simulator reports the
  // firings that exceeded their budget (conclusions' "runtime exceptions").
  Graph g = motion_app({16, 16}, 50.0, 3, /*bound=*/60);
  const SimResult r = simulate(g, map_one_to_one(g), SimOptions{});
  ASSERT_TRUE(r.completed);
  EXPECT_GT(r.resource_exception_count, 0);
  ASSERT_FALSE(r.resource_exceptions.empty());
  const ResourceException& e = r.resource_exceptions.front();
  EXPECT_EQ(e.kernel, "motion");
  EXPECT_EQ(e.method, "estimate");
  EXPECT_GT(e.used_cycles, e.bound_cycles);
}

TEST(DynamicResources, DynamicCyclesDriveTiming) {
  // Identical graphs, one with an artificially cheap reported cost, show
  // different simulated spans under an unservicable input rate.
  class FixedDynamic final : public Kernel {
   public:
    FixedDynamic(std::string name, long report)
        : Kernel(std::move(name)), report_(report) {}
    void configure() override {
      create_input("in", {1, 1});
      create_output("out", {1, 1});
      auto& m = register_method("m", Resources{100000, 4}, &FixedDynamic::run);
      method_input(m, "in");
      method_output(m, "out");
    }
    [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
      return std::make_unique<FixedDynamic>(*this);
    }

   private:
    void run() {
      report_cycles(report_);
      write_output("out", read_input("in"));
    }
    long report_;
  };

  auto span = [](long cycles) {
    Graph g;
    auto& in = g.add<InputKernel>("input", Size2{8, 8}, 1e6, 1);
    Kernel& k = g.add_kernel(std::make_unique<FixedDynamic>("dyn", cycles));
    auto& out = g.add<OutputKernel>("result");
    g.connect(in, "out", k, "in");
    g.connect(k, "out", out, "in");
    const SimResult r = simulate(g, map_one_to_one(g), SimOptions{});
    EXPECT_TRUE(r.completed);
    return r.sim_seconds;
  };
  EXPECT_GT(span(50000), 2.0 * span(1000));
}

}  // namespace
}  // namespace bpp
