// Geometry primitives (paper §II-A): iteration counts, halos, extents,
// and the rectangle algebra used by the alignment analysis.

#include <gtest/gtest.h>

#include "core/geometry.h"

namespace bpp {
namespace {

TEST(Size2, BasicProperties) {
  Size2 s{5, 3};
  EXPECT_EQ(s.area(), 15);
  EXPECT_TRUE(s.positive());
  EXPECT_FALSE((Size2{0, 3}).positive());
  EXPECT_FALSE((Size2{5, -1}).positive());
  EXPECT_EQ((Size2{2, 2}), (Size2{2, 2}));
  EXPECT_NE((Size2{2, 2}), (Size2{2, 3}));
}

TEST(Size2, AreaUsesLongArithmetic) {
  Size2 s{100000, 100000};
  EXPECT_EQ(s.area(), 10000000000L);
}

TEST(IterationCount, PaperConvolutionExample) {
  // §III-A: a 100x100 image into a 5x5 window stepping (1,1) gives a
  // 96x96 iteration space (4x4 halo).
  EXPECT_EQ(iteration_count({100, 100}, {5, 5}, {1, 1}), (Size2{96, 96}));
  EXPECT_EQ(halo({5, 5}, {1, 1}), (Size2{4, 4}));
}

TEST(IterationCount, WindowEqualsFrame) {
  EXPECT_EQ(iteration_count({7, 7}, {7, 7}, {1, 1}), (Size2{1, 1}));
}

TEST(IterationCount, WindowLargerThanFrame) {
  EXPECT_EQ(iteration_count({4, 4}, {5, 5}, {1, 1}), (Size2{0, 0}));
  EXPECT_EQ(iteration_count({5, 4}, {5, 5}, {1, 1}), (Size2{0, 0}));
}

TEST(IterationCount, NonUnitStep) {
  // 10 wide, window 4, step 2: positions 0,2,4,6 -> 4 iterations.
  EXPECT_EQ(iteration_count({10, 10}, {4, 4}, {2, 2}), (Size2{4, 4}));
  // Trailing partial window is discarded: 11 wide gives the same.
  EXPECT_EQ(iteration_count({11, 10}, {4, 4}, {2, 2}).w, 4);
}

TEST(IterationCount, TilingStep) {
  EXPECT_EQ(iteration_count({12, 8}, {2, 2}, {2, 2}), (Size2{6, 4}));
}

TEST(CoveredExtent, InvertsIterationCountForExactTilings) {
  EXPECT_EQ(covered_extent({6, 4}, {2, 2}, {2, 2}), (Size2{12, 8}));
  EXPECT_EQ(covered_extent({96, 96}, {5, 5}, {1, 1}), (Size2{100, 100}));
  EXPECT_EQ(covered_extent({0, 0}, {3, 3}, {1, 1}), (Size2{0, 0}));
}

TEST(Halo, StepLargerThanWindowGivesNegativeReuse) {
  // Decimation: window 1, step 2 skips data; halo is negative.
  EXPECT_EQ(halo({1, 1}, {2, 2}), (Size2{-1, -1}));
}

struct GeomCase {
  Size2 frame;
  Size2 win;
  Step2 step;
};

class IterationRoundTrip : public ::testing::TestWithParam<GeomCase> {};

TEST_P(IterationRoundTrip, CoveredExtentIsWithinFrameAndMaximal) {
  const auto& c = GetParam();
  const Size2 it = iteration_count(c.frame, c.win, c.step);
  ASSERT_TRUE(it.positive());
  const Size2 cov = covered_extent(it, c.win, c.step);
  // Covered extent fits in the frame...
  EXPECT_LE(cov.w, c.frame.w);
  EXPECT_LE(cov.h, c.frame.h);
  // ...and one more step would not.
  EXPECT_GT(cov.w + c.step.x, c.frame.w);
  EXPECT_GT(cov.h + c.step.y, c.frame.h);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, IterationRoundTrip,
    ::testing::Values(GeomCase{{100, 100}, {5, 5}, {1, 1}},
                      GeomCase{{100, 100}, {3, 3}, {1, 1}},
                      GeomCase{{64, 48}, {4, 4}, {2, 2}},
                      GeomCase{{64, 48}, {4, 2}, {4, 2}},
                      GeomCase{{17, 13}, {3, 5}, {2, 3}},
                      GeomCase{{9, 9}, {9, 9}, {1, 1}},
                      GeomCase{{33, 7}, {2, 2}, {3, 3}},
                      GeomCase{{12, 12}, {1, 1}, {1, 1}}));

TEST(Rect, IntersectAndBounds) {
  // The Fig. 8 overlay: median output covers [1,99), convolution [2,98).
  Rect med{1, 1, 99, 99};
  Rect conv{2, 2, 98, 98};
  EXPECT_EQ(Rect::intersect(med, conv), conv);
  EXPECT_EQ(Rect::bounds(med, conv), med);
  EXPECT_FALSE(Rect::intersect(med, conv).empty());
  Rect disjoint{200, 200, 210, 210};
  EXPECT_TRUE(Rect::intersect(med, disjoint).empty());
}

TEST(Rect, Dimensions) {
  Rect r{1.5, 2.0, 4.0, 7.0};
  EXPECT_DOUBLE_EQ(r.width(), 2.5);
  EXPECT_DOUBLE_EQ(r.height(), 5.0);
}

TEST(Border, Any) {
  EXPECT_FALSE((Border{}).any());
  EXPECT_TRUE((Border{1, 0, 0, 0}).any());
  EXPECT_TRUE((Border{0, 0, 0, 2}).any());
}

TEST(Offset2, Arithmetic) {
  Offset2 a{1.5, 2.0};
  Offset2 b{0.5, 0.25};
  EXPECT_EQ(a + b, (Offset2{2.0, 2.25}));
  EXPECT_EQ(a - b, (Offset2{1.0, 1.75}));
}

TEST(Printing, HumanReadableForms) {
  EXPECT_EQ(to_string(Size2{5, 5}), "(5x5)");
  EXPECT_EQ(to_string(Step2{1, 1}), "[1,1]");
  EXPECT_EQ(to_string(Offset2{2.0, 2.0}), "[2,2]");
}

}  // namespace
}  // namespace bpp
