// Adversarial error-path sweep: every diagnostic branch in graph
// validation (core/validation.cpp), every contradictory-flag rejection in
// the bpc CLI (tools/cli.cpp), and every range/shape check in the fault
// plan parser (fault/plan.cpp) is fired at least once. Error paths are
// code too — an error message nobody has ever seen is an error message
// that is probably wrong.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/pipeline.h"
#include "core/error.h"
#include "core/validation.h"
#include "fault/plan.h"
#include "kernels/feedback.h"
#include "kernels/kernels.h"
#include "tools/cli.h"
#include "test_util.h"

namespace bpp {
namespace {

using testutil::ItemSink;
using testutil::PassKernel;
using testutil::ScriptedSource;

bool mentions(const std::vector<std::string>& issues, const std::string& what) {
  for (const std::string& s : issues)
    if (s.find(what) != std::string::npos) return true;
  return false;
}

std::string all_of(const std::vector<std::string>& issues) {
  std::string s;
  for (const std::string& i : issues) s += i + "\n";
  return s;
}

// ---------------------------------------------------------------------------
// Graph validation

// A kernel whose clone() violates the contract by returning a freshly
// constructed (never-configured) instance instead of a copy — the bug
// class the "never configured" diagnostic defends against, since
// Graph::clone() stores clone() results without re-running configure().
class FreshCloneKernel final : public Kernel {
 public:
  explicit FreshCloneKernel(std::string name) : Kernel(std::move(name)) {}
  void configure() override {
    create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
    create_output("out", {1, 1});
    auto& m = register_method("pass", Resources{1, 1}, &FreshCloneKernel::pass);
    method_input(m, "in");
    method_output(m, "out");
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<FreshCloneKernel>(name());  // wrong: not a copy
  }

 private:
  void pass() { write_output("out", read_input("in")); }
};

TEST(Validation, UnconfiguredKernelAfterBadClone) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", std::vector<Item>{});
  auto& k = g.add<FreshCloneKernel>("fresh");
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", k, "in");
  g.connect(k, "out", sink, "in");
  EXPECT_TRUE(validate(g).empty()) << all_of(validate(g));

  const Graph c = g.clone();
  const auto issues = validate(c);
  EXPECT_TRUE(mentions(issues, "never configured")) << all_of(issues);
}

TEST(Validation, UnconnectedInputReported) {
  Graph g;
  auto& p = g.add<PassKernel>("lonely");
  auto& sink = g.add<ItemSink>("sink");
  g.connect(p, "out", sink, "in");
  const auto issues = validate(g);
  EXPECT_TRUE(mentions(issues, "input 'in' is not connected"))
      << all_of(issues);
}

// Second input is connected but no method lists it as a trigger.
class DeadInputKernel final : public Kernel {
 public:
  explicit DeadInputKernel(std::string name) : Kernel(std::move(name)) {}
  void configure() override {
    create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
    create_input("unused", {1, 1}, {1, 1}, {0.0, 0.0});
    create_output("out", {1, 1});
    auto& m = register_method("pass", Resources{1, 1}, &DeadInputKernel::pass);
    method_input(m, "in");
    method_output(m, "out");
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<DeadInputKernel>(*this);
  }

 private:
  void pass() { write_output("out", read_input("in")); }
};

TEST(Validation, InputFeedingNoMethodReported) {
  Graph g;
  auto& a = g.add<ScriptedSource>("a", std::vector<Item>{});
  auto& b = g.add<ScriptedSource>("b", std::vector<Item>{});
  auto& k = g.add<DeadInputKernel>("dead");
  auto& sink = g.add<ItemSink>("sink");
  g.connect(a, "out", k, "in");
  g.connect(b, "out", k, "unused");
  g.connect(k, "out", sink, "in");
  const auto issues = validate(g);
  EXPECT_TRUE(mentions(issues, "'unused' does not trigger any method"))
      << all_of(issues);
}

TEST(Validation, UnconnectedOutputReported) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", std::vector<Item>{});
  auto& p = g.add<PassKernel>("p");
  g.connect(src, "out", p, "in");
  const auto issues = validate(g);
  EXPECT_TRUE(mentions(issues, "output 'out' is not connected"))
      << all_of(issues);
}

// A "source" that provides no stream spec and illegally declares an input.
class BrokenSource final : public Kernel {
 public:
  explicit BrokenSource(std::string name) : Kernel(std::move(name)) {}
  void configure() override {
    create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
    create_output("out", {1, 1});
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<BrokenSource>(*this);
  }
  [[nodiscard]] bool is_source() const override { return true; }
};

TEST(Validation, SourceWithoutSpecAndWithInputsReported) {
  Graph g;
  auto& feeder = g.add<ScriptedSource>("feeder", std::vector<Item>{});
  auto& s = g.add<BrokenSource>("weird");
  auto& sink = g.add<ItemSink>("sink");
  g.connect(feeder, "out", s, "in");
  g.connect(s, "out", sink, "in");
  const auto issues = validate(g);
  EXPECT_TRUE(mentions(issues, "provides no stream spec")) << all_of(issues);
  EXPECT_TRUE(mentions(issues, "source kernels may not have inputs"))
      << all_of(issues);
}

// Non-source kernel that registers nothing.
class MethodlessKernel final : public Kernel {
 public:
  explicit MethodlessKernel(std::string name) : Kernel(std::move(name)) {}
  void configure() override {
    create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
    create_output("out", {1, 1});
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<MethodlessKernel>(*this);
  }
};

TEST(Validation, MethodlessKernelReported) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", std::vector<Item>{});
  auto& k = g.add<MethodlessKernel>("inert");
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", k, "in");
  g.connect(k, "out", sink, "in");
  const auto issues = validate(g);
  EXPECT_TRUE(mentions(issues, "defines no methods")) << all_of(issues);
}

// A data method with no triggering inputs (registration allows it; the
// validator flags it because it could never fire).
class TriggerlessKernel final : public Kernel {
 public:
  explicit TriggerlessKernel(std::string name) : Kernel(std::move(name)) {}
  void configure() override {
    create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
    create_output("out", {1, 1});
    auto& m = register_method("pass", Resources{1, 1}, &TriggerlessKernel::pass);
    method_input(m, "in");
    method_output(m, "out");
    auto& z = register_method("zombie", Resources{1, 1},
                              &TriggerlessKernel::zombie);
    method_output(z, "out");
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<TriggerlessKernel>(*this);
  }

 private:
  void pass() { write_output("out", read_input("in")); }
  void zombie() {}
};

TEST(Validation, MethodWithoutTriggersReported) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", std::vector<Item>{});
  auto& k = g.add<TriggerlessKernel>("half");
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", k, "in");
  g.connect(k, "out", sink, "in");
  const auto issues = validate(g);
  EXPECT_TRUE(mentions(issues, "method 'zombie' has no triggering inputs"))
      << all_of(issues);
}

TEST(Validation, CycleReportedAsIssue) {
  Graph g;
  auto& a = g.add<PassKernel>("a");
  auto& b = g.add<PassKernel>("b");
  g.connect(a, "out", b, "in");
  g.connect(b, "out", a, "in");
  const auto issues = validate(g);
  EXPECT_TRUE(mentions(issues, "cycle")) << all_of(issues);
}

TEST(Validation, ValidateOrThrowAggregates) {
  Graph g;
  g.add<PassKernel>("floating");  // both ports dangling
  try {
    validate_or_throw(g);
    FAIL() << "expected GraphError";
  } catch (const GraphError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("invalid application graph"), std::string::npos) << msg;
    EXPECT_NE(msg.find("2 problem(s)"), std::string::npos) << msg;
  }
}

// ---------------------------------------------------------------------------
// CLI flag rejection

cli::Args parsed(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bpc");
  cli::Args a;
  EXPECT_TRUE(cli::parse(static_cast<int>(argv.size()), argv.data(), a));
  cli::apply_implications(a);
  return a;
}

std::string reject(std::vector<const char*> argv) {
  cli::Args a = parsed(std::move(argv));
  const char* err = cli::contradiction(a);
  return err ? err : "";
}

TEST(Cli, ConsistentCombinationsAccepted) {
  EXPECT_EQ(reject({"fig1"}), "");
  EXPECT_EQ(reject({"fig1", "--simulate", "--firings", "5"}), "");
  EXPECT_EQ(reject({"fig1", "--run", "--pace", "--slowdown", "2"}), "");
  EXPECT_EQ(reject({"fig1", "--run", "--shed", "--deadline-slack", "0.01"}),
            "");
  EXPECT_EQ(reject({"fig1", "--faults", "p.json", "--fault-seed", "7"}), "");
}

TEST(Cli, EveryContradictionFires) {
  EXPECT_EQ(reject({"fig1", "--firings", "3"}),
            std::string("--firings applies to the simulator; add --simulate"));
  // --analyze alone: no implied execution.
  {
    cli::Args a;
    std::vector<const char*> argv{"bpc", "fig1", "--analyze", "-"};
    ASSERT_TRUE(cli::parse(static_cast<int>(argv.size()), argv.data(), a));
    cli::apply_implications(a);
    EXPECT_STREQ(cli::contradiction(a),
                 "--analyze needs an execution to observe; add --simulate or "
                 "--run");
  }
  EXPECT_EQ(reject({"fig1", "--firings", "0", "--trace", "t.json"}),
            std::string(
                "--firings 0 contradicts --trace: nothing would be recorded"));
  EXPECT_EQ(reject({"fig1", "--pace"}),
            std::string("--pace applies to the host runtime; add --run"));
  EXPECT_EQ(reject({"fig1", "--run", "--slowdown", "2"}),
            std::string("--slowdown requires --pace"));
  EXPECT_EQ(reject({"fig1", "--simulate", "--fault-seed", "3"}),
            std::string("--fault-seed requires --faults"));
  EXPECT_EQ(reject({"fig1", "--simulate", "--shed"}),
            std::string("--shed applies to the host runtime; add --run"));
  EXPECT_EQ(reject({"fig1", "--simulate", "--deadline-slack", "0.1"}),
            std::string("--deadline-slack requires --analyze or --shed"));
  EXPECT_EQ(reject({"fig1", "--simulate", "--predict-check", "0.01"}),
            std::string("--predict-check requires --predict"));
  EXPECT_EQ(reject({"fig1", "--predict", "--predict-check", "0.01"}),
            std::string(
                "--predict-check compares against the simulator; add "
                "--simulate"));
  EXPECT_EQ(
      reject({"fig1", "--predict", "--simulate", "--predict-check", "0"}),
      std::string("--predict-check tolerance must be positive"));
}

TEST(Cli, PredictFlagsCompose) {
  EXPECT_EQ(reject({"fig1", "--predict"}), "");
  EXPECT_EQ(
      reject({"fig1", "--predict", "--simulate", "--predict-check", "0.005"}),
      "");
  // A cost table is only useful to the predictor, so it implies it.
  const cli::Args a = parsed({"fig1", "--predict-costs", "bench.json"});
  EXPECT_TRUE(a.do_predict);
  EXPECT_EQ(a.predict_costs_path, "bench.json");
}

TEST(Cli, ImplicationsDefaultToSimulator) {
  EXPECT_TRUE(parsed({"fig1", "--trace", "t.json"}).do_sim);
  EXPECT_TRUE(parsed({"fig1", "--metrics", "-"}).do_sim);
  EXPECT_TRUE(parsed({"fig1", "--faults", "p.json"}).do_sim);
  EXPECT_TRUE(parsed({"fig1", "--degradation", "-"}).do_sim);
  EXPECT_FALSE(parsed({"fig1", "--run", "--faults", "p.json"}).do_sim);
  EXPECT_FALSE(parsed({"fig1", "--dot", "g.dot"}).do_sim);
}

TEST(Cli, ParseRejectsMalformedFlags) {
  auto fails = [](std::vector<const char*> argv) {
    argv.insert(argv.begin(), "bpc");
    cli::Args a;
    return !cli::parse(static_cast<int>(argv.size()), argv.data(), a);
  };
  EXPECT_TRUE(fails({}));                            // no app at all
  EXPECT_TRUE(fails({"fig1", "--frame", "banana"}));  // not WxH
  EXPECT_TRUE(fails({"fig1", "--frame"}));            // missing value
  EXPECT_TRUE(fails({"fig1", "--policy", "best"}));   // unknown policy
  EXPECT_TRUE(fails({"fig1", "--machine", "fast"}));  // not C,M
  EXPECT_TRUE(fails({"fig1", "--fault-seed", "7up"}));  // trailing junk
  EXPECT_TRUE(fails({"fig1", "--faults"}));           // missing value
  EXPECT_TRUE(fails({"fig1", "--warp-speed"}));       // unknown flag
  EXPECT_FALSE(fails({"fig1", "--fault-seed", "7"}));
}

TEST(Cli, ParsePopulatesFaultFields) {
  const cli::Args a = parsed({"sobel", "--faults", "plan.json", "--fault-seed",
                              "42", "--run", "--shed", "--degradation",
                              "deg.json"});
  EXPECT_EQ(a.faults_path, "plan.json");
  EXPECT_TRUE(a.fault_seed_set);
  EXPECT_EQ(a.fault_seed, 42u);
  EXPECT_TRUE(a.shed);
  EXPECT_EQ(a.degradation_path, "deg.json");
  EXPECT_TRUE(a.do_run);
}

// ---------------------------------------------------------------------------
// Fault plan validation

std::string plan_error(const std::string& json) {
  try {
    (void)fault::parse_plan(json);
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(FaultPlanErrors, EveryRangeCheckFires) {
  EXPECT_NE(plan_error("[1,2]").find("must be an object"), std::string::npos);
  EXPECT_NE(plan_error("{\"seed\": -1}").find("seed must be >= 0"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"kernels\": [{\"jitter\": 1.0}]}")
                .find("jitter must be in [0, 1)"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"kernels\": [{\"overrun_prob\": 1.5}]}")
                .find("overrun_prob must be a probability"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"kernels\": [{\"overrun_factor\": 0.5}]}")
                .find("overrun_factor must be >= 1"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"kernels\": [{\"stall_prob\": -0.1}]}")
                .find("stall_prob must be a probability"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"kernels\": [{\"stall_seconds\": -1}]}")
                .find("stall_seconds must be >= 0"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"cores\": [{\"core\": -2}]}")
                .find("core index must be >= 0"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"cores\": [{\"throttle\": 0.9}]}")
                .find("throttle must be >= 1"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"delivery\": [{\"prob\": 2}]}")
                .find("delivery prob must be a probability"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"delivery\": [{\"delay_seconds\": -1e-6}]}")
                .find("delay_seconds must be >= 0"),
            std::string::npos);
}

TEST(FaultPlanErrors, UnknownKeysRejectedEverywhere) {
  EXPECT_NE(plan_error("{\"sead\": 1}").find("unknown key \"sead\" in plan"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"kernels\": [{\"jiter\": 0.1}]}")
                .find("unknown key \"jiter\" in kernels[] entry"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"cores\": [{\"cpu\": 1}]}")
                .find("unknown key \"cpu\" in cores[] entry"),
            std::string::npos);
  EXPECT_NE(plan_error("{\"delivery\": [{\"delay\": 1}]}")
                .find("unknown key \"delay\" in delivery[] entry"),
            std::string::npos);
}

TEST(FaultPlanErrors, MalformedJsonAndMissingFile) {
  EXPECT_NE(plan_error("{\"seed\": }").size(), 0u);
  EXPECT_NE(plan_error("").size(), 0u);
  try {
    (void)fault::load_plan("/nonexistent/fault/plan.json");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Compiler analysis errors around feedback loops.

TEST(AnalysisErrors, TrimmedLoopInputRejected) {
  // A windowed kernel inside the loop shrinks the frame below the declared
  // feedback spec. Before this diagnostic existed, the graph compiled and
  // then deadlocked at run time (the loop kernel waited forever for pixels
  // the trim had eaten); now the analysis rejects it.
  const Size2 frame{16, 14};
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, 50.0, 2);
  auto& med = g.add<MedianKernel>("median", 3, 3);
  auto& mix = g.add<TemporalMixKernel>("mix", 0.5);
  auto& init = g.add<InitialValueKernel>("loopInit", Size2{14, 12}, 50.0, 0.0);
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", med, "in");
  g.connect(med, "out", mix, "x");
  g.connect(init, "out", mix, "prev");
  g.connect(mix, "out", init, "in");
  g.connect(mix, "out", out, "in");
  try {
    CompiledApp app = compile(std::move(g));
    FAIL() << "expected AnalysisError";
  } catch (const AnalysisError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("loopInit"), std::string::npos) << msg;
    EXPECT_NE(msg.find("loop-carried input"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cannot converge"), std::string::npos) << msg;
  }
}

// ---- bpd flag surface ---------------------------------------------------

cli::BpdArgs bpd_parsed(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bpd");
  cli::BpdArgs a;
  EXPECT_TRUE(cli::parse_bpd(static_cast<int>(argv.size()), argv.data(), a));
  return a;
}

std::string bpd_reject(std::vector<const char*> argv) {
  const cli::BpdArgs a = bpd_parsed(std::move(argv));
  const char* err = cli::bpd_contradiction(a);
  return err ? err : "";
}

TEST(BpdCli, ConsistentCombinationsAccepted) {
  EXPECT_EQ(bpd_reject({"--submit", "a.json"}), "");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--submit", "b.json",
                        "--status", "-"}),
            "");
  EXPECT_EQ(bpd_reject({"--spool", "dir", "--spool-rounds", "3",
                        "--spool-interval", "0.1"}),
            "");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--no-admission", "--no-pace"}),
            "");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--cores", "8", "--max-tenants",
                        "4", "--core-budget", "0.8", "--degrade-budget", "1.1",
                        "--evict-misses", "5"}),
            "");
  EXPECT_EQ(bpd_reject({"--recover", "--journal", "j.jsonl"}), "");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--journal", "j.jsonl",
                        "--max-restarts", "0", "--restart-backoff", "0",
                        "--stall-factor", "4", "--stall-grace", "0.5",
                        "--drain-timeout", "5"}),
            "");
}

TEST(BpdCli, EveryContradictionFires) {
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--cores", "0"}),
            "--cores must be at least 1");
  EXPECT_EQ(bpd_reject({}),
            "nothing to serve; add --submit FILE, --spool DIR, or --recover");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--max-tenants", "4",
                        "--no-admission"}),
            "--max-tenants is an admission limit; it contradicts "
            "--no-admission");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--max-tenants", "0"}),
            "--max-tenants must be at least 1");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--core-budget", "0.8",
                        "--no-admission"}),
            "--core-budget configures admission; it contradicts "
            "--no-admission");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--degrade-budget", "1.1",
                        "--no-admission"}),
            "--degrade-budget configures admission; it contradicts "
            "--no-admission");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--core-budget", "0"}),
            "--core-budget must be positive");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--core-budget", "0.9",
                        "--degrade-budget", "0.5"}),
            "--degrade-budget below --core-budget: degraded admission would "
            "be stricter than plain admission");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--evict-misses", "-1"}),
            "--evict-misses must be >= 0");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--evict-misses", "2",
                        "--no-pace"}),
            "--evict-misses needs paced tenants to observe deadlines; it "
            "contradicts --no-pace");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--spool-rounds", "2"}),
            "--spool-rounds requires --spool");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--spool-interval", "0.1"}),
            "--spool-interval requires --spool");
  EXPECT_EQ(bpd_reject({"--spool", "d", "--spool-rounds", "0"}),
            "--spool-rounds must be at least 1");
  EXPECT_EQ(bpd_reject({"--spool", "d", "--spool-interval", "-1"}),
            "--spool-interval must be >= 0");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--timeout", "0"}),
            "--timeout must be positive");
  EXPECT_EQ(bpd_reject({"--recover"}),
            "--recover replays the admission journal; it requires --journal");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--max-restarts", "-1"}),
            "--max-restarts must be >= 0");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--restart-backoff", "-0.1"}),
            "--restart-backoff must be >= 0");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--stall-factor", "0"}),
            "--stall-factor must be positive");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--stall-grace", "-1"}),
            "--stall-grace must be >= 0");
  EXPECT_EQ(bpd_reject({"--submit", "a.json", "--drain-timeout", "0"}),
            "--drain-timeout must be positive");
}

TEST(BpdCli, ParseRejectsMalformedFlags) {
  auto fails = [](std::vector<const char*> argv) {
    argv.insert(argv.begin(), "bpd");
    cli::BpdArgs a;
    return !cli::parse_bpd(static_cast<int>(argv.size()), argv.data(), a);
  };
  EXPECT_TRUE(fails({"--bogus"}));
  EXPECT_TRUE(fails({"--cores"}));          // missing value
  EXPECT_TRUE(fails({"--submit"}));         // missing value
  EXPECT_TRUE(fails({"--machine", "oops"}));  // must be CLOCK_HZ,MEM_WORDS
}

TEST(BpdCli, ParsePopulatesServiceFields) {
  const cli::BpdArgs a = bpd_parsed(
      {"--cores", "8", "--max-tenants", "16", "--core-budget", "0.85",
       "--degrade-budget", "1.2", "--evict-misses", "7", "--submit", "a.json",
       "--submit", "b.json", "--spool", "box", "--spool-rounds", "4",
       "--spool-interval", "0.5", "--machine", "40e6,1024", "--timeout", "9",
       "--status", "s.txt", "--status-json", "s.json", "--isa", "scalar",
       "--no-pace", "--journal", "wal.jsonl", "--recover", "--max-restarts",
       "2", "--restart-backoff", "0.1", "--stall-factor", "6", "--stall-grace",
       "0.4", "--drain-timeout", "7"});
  EXPECT_EQ(a.cores, 8);
  EXPECT_EQ(a.max_tenants, 16);
  EXPECT_TRUE(a.max_tenants_set);
  EXPECT_DOUBLE_EQ(a.core_budget, 0.85);
  EXPECT_DOUBLE_EQ(a.degrade_budget, 1.2);
  EXPECT_EQ(a.evict_misses, 7);
  ASSERT_EQ(a.submit_files.size(), 2u);
  EXPECT_EQ(a.submit_files[1], "b.json");
  EXPECT_EQ(a.spool_dir, "box");
  EXPECT_EQ(a.spool_rounds, 4);
  EXPECT_DOUBLE_EQ(a.spool_interval_seconds, 0.5);
  EXPECT_DOUBLE_EQ(a.machine.clock_hz, 40e6);
  EXPECT_EQ(a.machine.mem_words, 1024);
  EXPECT_DOUBLE_EQ(a.timeout_seconds, 9.0);
  EXPECT_EQ(a.status_path, "s.txt");
  EXPECT_EQ(a.status_json_path, "s.json");
  EXPECT_EQ(a.isa, "scalar");
  EXPECT_FALSE(a.pace);
  EXPECT_EQ(a.journal_path, "wal.jsonl");
  EXPECT_TRUE(a.recover);
  EXPECT_EQ(a.max_restarts, 2);
  EXPECT_TRUE(a.max_restarts_set);
  EXPECT_DOUBLE_EQ(a.restart_backoff_seconds, 0.1);
  EXPECT_DOUBLE_EQ(a.stall_factor, 6.0);
  EXPECT_DOUBLE_EQ(a.stall_grace_seconds, 0.4);
  EXPECT_DOUBLE_EQ(a.drain_timeout_seconds, 7.0);
  EXPECT_TRUE(a.drain_timeout_set);
}

}  // namespace
}  // namespace bpp
