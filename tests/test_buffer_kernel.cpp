// BufferKernel (paper §III-B): 2-D circular buffering from producer
// granularity to consumer windows, token regeneration, sizing rule, and
// the reshape used by column splitting.

#include <gtest/gtest.h>

#include "kernels/buffer.h"
#include "runtime/runtime.h"
#include "test_util.h"

namespace bpp {
namespace {

using testutil::ItemSink;
using testutil::ScriptedSource;
using testutil::scanline_items;

struct BufCase {
  Size2 frame;
  Size2 win;
  Step2 step;
};

class BufferWindows : public ::testing::TestWithParam<BufCase> {};

TEST_P(BufferWindows, EmitsEverySlidingWindowInScanOrder) {
  const BufCase& c = GetParam();
  auto value = [](int x, int y) { return x + 100.0 * y; };

  Graph g;
  auto& src = g.add<ScriptedSource>("src", scanline_items(c.frame, value), c.frame);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, c.win, c.step, c.frame);
  auto& sink = g.add<ItemSink>("sink", c.win);
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", sink, "in");

  const RuntimeResult r = run_sequential(g);
  ASSERT_TRUE(r.completed) << r.diagnostics;

  const Size2 it = iteration_count(c.frame, c.win, c.step);
  EXPECT_EQ(sink.data_count(), it.area());
  EXPECT_EQ(sink.token_count(tok::kEndOfLine), it.h);
  EXPECT_EQ(sink.token_count(tok::kEndOfFrame), 1);
  EXPECT_EQ(sink.token_count(tok::kEndOfStream), 1);

  // First values of each window follow the scan-order window origins.
  size_t n = 0;
  for (int wy = 0; wy < it.h && n < sink.log.size(); ++wy) {
    for (int wx = 0; wx < it.w; ++wx) {
      while (n < sink.log.size() && sink.log[n] <= -1000.0) ++n;
      ASSERT_LT(n, sink.log.size());
      EXPECT_DOUBLE_EQ(sink.log[n], value(wx * c.step.x, wy * c.step.y))
          << "window (" << wx << ',' << wy << ')';
      ++n;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BufferWindows,
    ::testing::Values(BufCase{{8, 6}, {3, 3}, {1, 1}},
                      BufCase{{10, 8}, {5, 5}, {1, 1}},
                      BufCase{{8, 6}, {2, 2}, {2, 2}},
                      BufCase{{9, 7}, {3, 3}, {2, 2}},
                      BufCase{{6, 6}, {1, 1}, {1, 1}},
                      BufCase{{12, 4}, {4, 2}, {4, 2}},
                      BufCase{{7, 7}, {7, 7}, {1, 1}},
                      BufCase{{6, 9}, {1, 3}, {1, 3}}));

TEST(BufferKernel, WindowContentsMatchCrops) {
  const Size2 frame{7, 5};
  auto value = [](int x, int y) { return 10.0 * x + y; };

  // Full-window capture via a (3x3)-item sink storing only first values is
  // insufficient; use a custom sink collecting whole tiles.
  class TileSink final : public Kernel {
   public:
    TileSink() : Kernel("tiles") {}
    void configure() override {
      create_input("in", {3, 3}, {1, 1}, {0.0, 0.0});
      auto& m = register_method("take", Resources{1, 0}, &TileSink::take);
      method_input(m, "in");
    }
    [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
      return std::make_unique<TileSink>(*this);
    }
    std::vector<Tile> tiles;

   private:
    void take() { tiles.push_back(read_input("in")); }
  };

  Graph g;
  auto& src = g.add<ScriptedSource>("src", scanline_items(frame, value), frame);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{3, 3}, Step2{1, 1},
                                  frame);
  auto& sink = g.add<TileSink>();
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  Tile full(frame);
  for (int y = 0; y < frame.h; ++y)
    for (int x = 0; x < frame.w; ++x) full.at(x, y) = value(x, y);

  const Size2 it = iteration_count(frame, {3, 3}, {1, 1});
  ASSERT_EQ(sink.tiles.size(), static_cast<size_t>(it.area()));
  size_t n = 0;
  for (int wy = 0; wy < it.h; ++wy)
    for (int wx = 0; wx < it.w; ++wx)
      EXPECT_EQ(sink.tiles[n++], full.crop(wx, wy, {3, 3}));
}

TEST(BufferKernel, MultiFrameResetsCorrectly) {
  const Size2 frame{5, 4};
  std::vector<Item> items;
  for (int f = 0; f < 3; ++f) {
    auto s = scanline_items(frame, [f](int x, int y) { return f * 1000 + x + 10 * y; },
                            /*eos=*/false);
    items.insert(items.end(), s.begin(), s.end());
  }
  items.push_back(testutil::token(tok::kEndOfStream));

  Graph g;
  auto& src = g.add<ScriptedSource>("src", items, frame);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{3, 3}, Step2{1, 1},
                                  frame);
  auto& sink = g.add<ItemSink>("sink", Size2{3, 3});
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  const Size2 it = iteration_count(frame, {3, 3}, {1, 1});
  EXPECT_EQ(sink.data_count(), 3L * it.area());
  EXPECT_EQ(sink.token_count(tok::kEndOfFrame), 3);
  EXPECT_EQ(sink.token_count(tok::kEndOfLine), 3L * it.h);
}

TEST(BufferKernel, CoarseInputGranularity) {
  // 2x2 granules in, 4x4 windows stepping 2 out.
  const Size2 frame{8, 8};
  std::vector<Item> items;
  for (int gy = 0; gy < 4; ++gy) {
    for (int gx = 0; gx < 4; ++gx) {
      Tile t(2, 2);
      for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 2; ++x) t.at(x, y) = (gx * 2 + x) + 10.0 * (gy * 2 + y);
      items.emplace_back(std::move(t));
    }
    items.push_back(testutil::token(tok::kEndOfLine, gy));
  }
  items.push_back(testutil::token(tok::kEndOfFrame));
  items.push_back(testutil::token(tok::kEndOfStream));

  Graph g;
  auto& src = g.add<ScriptedSource>("src", items, frame);
  auto& buf = g.add<BufferKernel>("buf", Size2{2, 2}, Size2{4, 4}, Step2{2, 2},
                                  frame);
  auto& sink = g.add<ItemSink>("sink", Size2{4, 4});
  g.connect(src, "out", buf, "in");
  g.connect(buf, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);
  EXPECT_EQ(sink.data_count(), iteration_count(frame, {4, 4}, {2, 2}).area());
}

TEST(BufferKernel, SizingRuleAndAnnotation) {
  // §III-B/Fig. 3: double-buffer the larger of input or output.
  BufferKernel b5("b5", {1, 1}, {5, 5}, {1, 1}, {20, 16});
  EXPECT_EQ(b5.ring_rows(), 10);
  EXPECT_EQ(b5.storage_words(), 200);
  EXPECT_EQ(b5.size_annotation(), "[20x10]");

  BufferKernel b3("b3", {1, 1}, {3, 3}, {1, 1}, {26, 16});
  EXPECT_EQ(b3.size_annotation(), "[26x6]");

  // Coarse input larger than the window: input side dominates.
  BufferKernel bg("bg", {1, 4}, {1, 1}, {2, 2}, {8, 8});
  EXPECT_EQ(bg.ring_rows(), 8);
}

TEST(BufferKernel, RejectsBadGeometry) {
  EXPECT_THROW(BufferKernel("x", {3, 3}, {5, 5}, {1, 1}, {10, 10}),
               GraphError);  // granularity does not tile frame
  EXPECT_THROW(BufferKernel("x", {1, 1}, {12, 12}, {1, 1}, {10, 10}),
               GraphError);  // window larger than frame
  EXPECT_THROW(BufferKernel("x", {1, 1}, {0, 3}, {1, 1}, {10, 10}), GraphError);
}

TEST(BufferKernel, ReshapeRebuildsBookkeeping) {
  BufferKernel b("b", {1, 1}, {3, 3}, {1, 1}, {20, 10});
  b.ensure_configured();
  const long before = b.storage_words();
  b.reshape({11, 10});
  EXPECT_EQ(b.frame(), (Size2{11, 10}));
  EXPECT_EQ(b.storage_words(), 66);
  EXPECT_NE(b.storage_words(), before);
  EXPECT_THROW(b.reshape({2, 2}), GraphError);  // window no longer fits
}

TEST(BufferKernel, CustomOutputStream) {
  BufferKernel b("b", {1, 1}, {5, 5}, {1, 1}, {100, 100});
  StreamInfo in;
  in.frame = {100, 100};
  in.item = {1, 1};
  in.items_per_frame = 10000;
  in.grid = {100, 100};
  in.rate_hz = 50.0;
  const auto out = b.custom_output_stream(0, in);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->frame, (Size2{100, 100}));
  EXPECT_EQ(out->item, (Size2{5, 5}));
  EXPECT_EQ(out->items_per_frame, 96L * 96);
  EXPECT_EQ(out->grid, (Size2{96, 96}));
}

TEST(BufferKernel, PendingCapacityIsTwoWindowRows) {
  BufferKernel b("b", {1, 1}, {5, 5}, {1, 1}, {100, 100});
  EXPECT_EQ(b.pending_capacity(), 2L * 96);
  b.set_output_slack(3);
  EXPECT_EQ(b.pending_capacity(), 3);
}

}  // namespace
}  // namespace bpp
