// Split/join/replicate FSMs (paper §IV-A, §IV-C, Fig. 10): round-robin
// distribution and collection, column-range splitting with halo
// replication, run-length joining, and token broadcast/collapse.

#include <gtest/gtest.h>

#include "kernels/split_join.h"
#include "runtime/runtime.h"
#include "test_util.h"

namespace bpp {
namespace {

using testutil::ItemSink;
using testutil::px;
using testutil::ScriptedSource;
using testutil::token;

std::vector<Item> numbered(int n, bool frame_tokens = true) {
  std::vector<Item> items;
  for (int i = 0; i < n; ++i) items.push_back(px(i));
  if (frame_tokens) {
    items.push_back(token(tok::kEndOfFrame));
  }
  items.push_back(token(tok::kEndOfStream));
  return items;
}

struct RRCase {
  int branches;
  int items;
};

class RoundRobinRoundTrip : public ::testing::TestWithParam<RRCase> {};

TEST_P(RoundRobinRoundTrip, SplitThenJoinIsIdentity) {
  const auto& c = GetParam();
  Graph g;
  auto& src = g.add<ScriptedSource>("src", numbered(c.items));
  auto& split = g.add<SplitKernel>("split", c.branches, Size2{1, 1}, Step2{1, 1});
  auto& join = g.add<JoinKernel>("join", c.branches, Size2{1, 1}, Step2{1, 1});
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src, "out", split, "in");
  for (int i = 0; i < c.branches; ++i)
    g.connect(split, "out" + std::to_string(i), join, "in" + std::to_string(i));
  g.connect(join, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  ASSERT_EQ(sink.data_count(), c.items);
  int expect = 0;
  for (double v : sink.log)
    if (v > -1000.0) EXPECT_DOUBLE_EQ(v, expect++);
  // One EOF collapsed from the broadcast copies.
  EXPECT_EQ(sink.token_count(tok::kEndOfFrame), 1);
  EXPECT_EQ(sink.token_count(tok::kEndOfStream), 1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundRobinRoundTrip,
                         ::testing::Values(RRCase{2, 10}, RRCase{3, 10},
                                           RRCase{3, 9}, RRCase{4, 7},
                                           RRCase{1, 5}, RRCase{5, 23}));

TEST(SplitKernel, RoundRobinResetsAtEndOfFrame) {
  // 5 items over 2 branches, then EOF, then 4 more: after the EOF the
  // round-robin pointer restarts at branch 0, so branch 0 receives items
  // 0,2,4 of frame 1 and 5,7 of frame 2.
  std::vector<Item> items;
  for (int i = 0; i < 5; ++i) items.push_back(px(i));
  items.push_back(token(tok::kEndOfFrame));
  for (int i = 5; i < 9; ++i) items.push_back(px(i));
  items.push_back(token(tok::kEndOfFrame));
  items.push_back(token(tok::kEndOfStream));

  Graph g;
  auto& src = g.add<ScriptedSource>("src", items);
  auto& split = g.add<SplitKernel>("split", 2, Size2{1, 1}, Step2{1, 1});
  auto& s0 = g.add<ItemSink>("s0");
  auto& s1 = g.add<ItemSink>("s1");
  g.connect(split, "out0", s0, "in");
  g.connect(split, "out1", s1, "in");
  g.connect(src, "out", split, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  std::vector<double> d0, d1;
  for (double v : s0.log)
    if (v > -1000.0) d0.push_back(v);
  for (double v : s1.log)
    if (v > -1000.0) d1.push_back(v);
  EXPECT_EQ(d0, (std::vector<double>{0, 2, 4, 5, 7}));
  EXPECT_EQ(d1, (std::vector<double>{1, 3, 6, 8}));
  // Tokens broadcast to every branch.
  EXPECT_EQ(s0.token_count(tok::kEndOfFrame), 2);
  EXPECT_EQ(s1.token_count(tok::kEndOfFrame), 2);
  EXPECT_EQ(s1.token_count(tok::kEndOfStream), 1);
}

TEST(SplitKernel, ColumnRangesReplicateOverlap) {
  // Fig. 10: a 12-wide line split into [0,7) and [5,12): columns 5 and 6
  // go to both branches.
  std::vector<Item> items;
  for (int x = 0; x < 12; ++x) items.push_back(px(x));
  items.push_back(token(tok::kEndOfLine));
  for (int x = 0; x < 12; ++x) items.push_back(px(100 + x));
  items.push_back(token(tok::kEndOfLine));
  items.push_back(token(tok::kEndOfFrame));
  items.push_back(token(tok::kEndOfStream));

  Graph g;
  auto& src = g.add<ScriptedSource>("src", items);
  auto& split = g.add<SplitKernel>(
      "split", std::vector<std::pair<int, int>>{{0, 7}, {5, 12}}, 12,
      Size2{1, 1}, Step2{1, 1});
  auto& s0 = g.add<ItemSink>("s0");
  auto& s1 = g.add<ItemSink>("s1");
  g.connect(src, "out", split, "in");
  g.connect(split, "out0", s0, "in");
  g.connect(split, "out1", s1, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  std::vector<double> d0, d1;
  for (double v : s0.log)
    if (v > -1000.0) d0.push_back(v);
  for (double v : s1.log)
    if (v > -1000.0) d1.push_back(v);
  EXPECT_EQ(d0, (std::vector<double>{0, 1, 2, 3, 4, 5, 6,
                                     100, 101, 102, 103, 104, 105, 106}));
  EXPECT_EQ(d1, (std::vector<double>{5, 6, 7, 8, 9, 10, 11,
                                     105, 106, 107, 108, 109, 110, 111}));
  EXPECT_EQ(s0.token_count(tok::kEndOfLine), 2);
  EXPECT_EQ(s1.token_count(tok::kEndOfLine), 2);
}

TEST(SplitKernel, ColumnRangeValidation) {
  EXPECT_THROW(SplitKernel("s", std::vector<std::pair<int, int>>{{0, 13}}, 12,
                           Size2{1, 1}, Step2{1, 1}),
               GraphError);
  EXPECT_THROW(SplitKernel("s", std::vector<std::pair<int, int>>{{5, 5}}, 12,
                           Size2{1, 1}, Step2{1, 1}),
               GraphError);
  EXPECT_THROW(SplitKernel("s", 0, Size2{1, 1}, Step2{1, 1}), GraphError);
}

TEST(JoinKernel, RunLengthCollectsPerLineRuns) {
  // Branch feeds: b0 delivers 3 items + EOL per line, b1 delivers 2 + EOL;
  // the join emits 0,1,2 from b0 then 10,11 from b1 per line.
  std::vector<Item> b0items, b1items;
  for (int line = 0; line < 2; ++line) {
    for (int i = 0; i < 3; ++i) b0items.push_back(px(line * 100 + i));
    b0items.push_back(token(tok::kEndOfLine, line));
    for (int i = 0; i < 2; ++i) b1items.push_back(px(line * 100 + 10 + i));
    b1items.push_back(token(tok::kEndOfLine, line));
  }
  b0items.push_back(token(tok::kEndOfFrame));
  b0items.push_back(token(tok::kEndOfStream));
  b1items.push_back(token(tok::kEndOfFrame));
  b1items.push_back(token(tok::kEndOfStream));

  Graph g;
  auto& src0 = g.add<ScriptedSource>("src0", b0items);
  auto& src1 = g.add<ScriptedSource>("src1", b1items);
  auto& join = g.add<JoinKernel>("join", std::vector<int>{3, 2}, Size2{1, 1},
                                 Step2{1, 1});
  auto& sink = g.add<ItemSink>("sink");
  g.connect(src0, "out", join, "in0");
  g.connect(src1, "out", join, "in1");
  g.connect(join, "out", sink, "in");
  ASSERT_TRUE(run_sequential(g).completed);

  std::vector<double> data;
  for (double v : sink.log)
    if (v > -1000.0) data.push_back(v);
  EXPECT_EQ(data, (std::vector<double>{0, 1, 2, 10, 11,
                                       100, 101, 102, 110, 111}));
  EXPECT_EQ(sink.token_count(tok::kEndOfLine), 2);
  EXPECT_EQ(sink.token_count(tok::kEndOfFrame), 1);
}

TEST(JoinKernel, RunLengthSkipsZeroRuns) {
  JoinKernel j("j", std::vector<int>{0, 2, 0, 1}, Size2{1, 1}, Step2{1, 1});
  j.ensure_configured();
  // First active branch is 1; consume pattern 1,1,3 per line — verified via
  // decide_custom inspection.
  Item d = px(1);
  auto head = [&](int p) -> const Item* { return p == 1 ? &d : nullptr; };
  const auto dec = j.decide_custom({0, 1, 2, 3}, head);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->pop_inputs, (std::vector<int>{1}));
}

TEST(ReplicateKernel, CopiesToAllBranches) {
  Graph g;
  auto& src = g.add<ScriptedSource>("src", numbered(4));
  auto& rep = g.add<ReplicateKernel>("rep", 3, Size2{1, 1}, Step2{1, 1});
  auto& s0 = g.add<ItemSink>("s0");
  auto& s1 = g.add<ItemSink>("s1");
  auto& s2 = g.add<ItemSink>("s2");
  g.connect(src, "out", rep, "in");
  g.connect(rep, "out0", s0, "in");
  g.connect(rep, "out1", s1, "in");
  g.connect(rep, "out2", s2, "in");
  ASSERT_TRUE(run_sequential(g).completed);
  for (ItemSink* s : {&s0, &s1, &s2}) {
    EXPECT_EQ(s->data_count(), 4);
    EXPECT_EQ(s->token_count(tok::kEndOfFrame), 1);
    EXPECT_EQ(s->token_count(tok::kEndOfStream), 1);
  }
}

TEST(JoinKernel, TokensWaitForAllBranches) {
  JoinKernel j("j", 2, Size2{1, 1}, Step2{1, 1});
  j.ensure_configured();
  Item eof = token(tok::kEndOfFrame);
  // EOF on branch 0 only: wait (branch 1 may still carry frame data).
  auto head1 = [&](int p) -> const Item* { return p == 0 ? &eof : nullptr; };
  auto d1 = j.decide_custom({0, 1}, head1);
  ASSERT_TRUE(d1.has_value());
  EXPECT_FALSE(d1->fires());
  // EOF on both: the handler fires (resets FSM, forwards one copy).
  Item eof2 = token(tok::kEndOfFrame);
  auto head2 = [&](int p) -> const Item* { return p == 0 ? &eof : &eof2; };
  auto d2 = j.decide_custom({0, 1}, head2);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->kind, FireDecision::Kind::Method);
  EXPECT_EQ(d2->pop_inputs.size(), 2u);
}

}  // namespace
}  // namespace bpp
