// Greedy time-multiplexing (paper §V, Fig. 12): pinning of sources and
// initial input buffers, capacity-respecting merges, and the utilization
// improvement over the 1:1 mapping.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/buffer.h"

namespace bpp {
namespace {

TEST(Mapping, OneToOneIsIdentity) {
  Graph g = apps::histogram_app({16, 12}, 25.0, 1);
  const Mapping m = map_one_to_one(g);
  EXPECT_EQ(m.cores, g.kernel_count());
  for (int k = 0; k < g.kernel_count(); ++k)
    EXPECT_EQ(m.core_of[static_cast<size_t>(k)], k);
  EXPECT_EQ(static_cast<int>(m.groups().size()), m.cores);
}

TEST(Multiplex, PinsSourcesAndInitialInputBuffers) {
  CompiledApp app = compile(apps::figure1_app({48, 36}, 180.0, 1, 64));
  const auto pinned = multiplex_pinned(app.graph);
  // All three sources pinned.
  for (KernelId s : app.graph.sources()) EXPECT_TRUE(pinned.count(s));
  // Every buffer fed (possibly through a split FSM) by the input is pinned.
  int pinned_buffers = 0;
  for (KernelId k : pinned)
    if (dynamic_cast<const BufferKernel*>(&app.graph.kernel(k))) ++pinned_buffers;
  EXPECT_GE(pinned_buffers, 2);  // the median buffer and the conv slices

  // Pinned kernels end up alone on their cores in the greedy mapping.
  for (KernelId k : pinned) {
    const int core = app.mapping.core_of[static_cast<size_t>(k)];
    for (int j = 0; j < app.graph.kernel_count(); ++j)
      if (j != k)
        EXPECT_NE(app.mapping.core_of[static_cast<size_t>(j)], core)
            << app.graph.kernel(j).name() << " shares a core with pinned "
            << app.graph.kernel(k).name();
  }
}

TEST(Multiplex, ReducesCores) {
  CompiledApp app = compile(apps::figure1_app({48, 36}, 180.0, 1, 64));
  EXPECT_LT(app.mapping.cores, app.one_to_one.cores);
}

TEST(Multiplex, RespectsUtilizationCap) {
  CompiledApp app = compile(apps::figure1_app({48, 36}, 420.0, 1, 64));
  const MachineSpec& m = app.options.machine;
  std::vector<double> util(static_cast<size_t>(app.mapping.cores), 0.0);
  std::vector<long> mem(static_cast<size_t>(app.mapping.cores), 0);
  std::vector<int> members(static_cast<size_t>(app.mapping.cores), 0);
  for (int k = 0; k < app.graph.kernel_count(); ++k) {
    const int c = app.mapping.core_of[static_cast<size_t>(k)];
    util[static_cast<size_t>(c)] += app.loads.of(k).utilization(m);
    mem[static_cast<size_t>(c)] += app.loads.of(k).memory_words;
    ++members[static_cast<size_t>(c)];
  }
  for (size_t c = 0; c < util.size(); ++c) {
    if (members[c] < 2) continue;  // merged groups only: singletons may
                                   // legitimately exceed the cap alone
    EXPECT_LE(util[c], m.target_utilization + 1e-9) << "core " << c;
    EXPECT_LE(mem[c], m.mem_words) << "core " << c;
  }
}

TEST(Multiplex, ImprovesEstimatedUtilization) {
  // §V: "this increases the CPU utilization from 20% to 37%" for the
  // example; we assert a meaningful improvement, not the exact point.
  CompiledApp app = compile(apps::figure1_app({48, 36}, 180.0, 1, 64));
  const double u1 = estimated_utilization(app.graph, app.loads,
                                          app.options.machine, app.one_to_one);
  const double ug = estimated_utilization(app.graph, app.loads,
                                          app.options.machine, app.mapping);
  EXPECT_GT(ug, 1.2 * u1);
  EXPECT_LE(ug, 1.0);
}

TEST(Multiplex, DisabledKeepsOneToOne) {
  CompileOptions opt;
  opt.multiplex = false;
  CompiledApp app = compile(apps::figure1_app({32, 24}, 60.0, 1, 16), opt);
  EXPECT_EQ(app.mapping.cores, app.one_to_one.cores);
}

TEST(Multiplex, GroupsPartitionTheKernels) {
  CompiledApp app = compile(apps::figure1_app({48, 36}, 180.0, 1, 64));
  const auto groups = app.mapping.groups();
  long total = 0;
  for (const auto& grp : groups) total += static_cast<long>(grp.size());
  EXPECT_EQ(total, app.graph.kernel_count());
  for (int c = 0; c < app.mapping.cores; ++c)
    for (KernelId k : groups[static_cast<size_t>(c)])
      EXPECT_EQ(app.mapping.core_of[static_cast<size_t>(k)], c);
}

TEST(Multiplex, MergesOnlyNeighbors) {
  // Any two kernels sharing a core must be connected through kernels on
  // that same core (greedy merges only along channels).
  CompiledApp app = compile(apps::figure1_app({48, 36}, 180.0, 1, 64));
  const auto groups = app.mapping.groups();
  for (const auto& grp : groups) {
    if (grp.size() < 2) continue;
    // BFS inside the group over live channels.
    std::set<KernelId> in_group(grp.begin(), grp.end());
    std::set<KernelId> seen;
    std::vector<KernelId> frontier{grp.front()};
    while (!frontier.empty()) {
      const KernelId k = frontier.back();
      frontier.pop_back();
      if (!seen.insert(k).second) continue;
      for (const Channel& ch : app.graph.channels()) {
        if (!ch.alive) continue;
        if (ch.src_kernel == k && in_group.count(ch.dst_kernel))
          frontier.push_back(ch.dst_kernel);
        if (ch.dst_kernel == k && in_group.count(ch.src_kernel))
          frontier.push_back(ch.src_kernel);
      }
    }
    EXPECT_EQ(seen.size(), grp.size());
  }
}

}  // namespace
}  // namespace bpp
