// Multi-tenant pipeline service: admission math against hand-built
// LoadMaps, the JSON wire protocol, daemon lifecycle (8 concurrent
// tenants zero-miss, deterministic oversubscriber rejection), per-tenant
// observability isolation under fault injection, deterministic eviction
// of a persistent deadline misser, and direct machine-level multiplexing
// of two programs on one shared worker pool.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "core/error.h"
#include "kernels/kernels.h"
#include "runtime/machine.h"
#include "runtime/program.h"
#include "runtime/runtime.h"
#include "serialize/json.h"
#include "service/admission.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "test_util.h"

namespace bpp {
namespace {

using service::AdmissionController;
using service::AdmissionPolicy;
using service::Daemon;
using service::DaemonOptions;
using service::Placement;
using service::TenantSpec;
using service::TenantState;
using service::Verdict;

// ---- admission: accept/reject math on hand-built demand vectors --------

TEST(Admission, AdmitsWithinCoreBudget) {
  AdmissionController c(4, AdmissionPolicy{});
  const Placement p = c.admit({0.5, 0.4});
  EXPECT_EQ(p.verdict, Verdict::kAdmitted);
  ASSERT_EQ(p.pool_core_of_vcore.size(), 2u);
  // Worst-fit on an empty pool spreads the two virtual cores.
  EXPECT_NE(p.pool_core_of_vcore[0], p.pool_core_of_vcore[1]);
  EXPECT_NEAR(p.demand, 0.9, 1e-12);
  EXPECT_NEAR(p.peak_load, 0.5, 1e-12);
  EXPECT_NEAR(c.total_load(), 0.9, 1e-12);
}

TEST(Admission, WorstFitSpreadsEqualDemands) {
  AdmissionController c(4, AdmissionPolicy{});
  for (int i = 0; i < 4; ++i) {
    const Placement p = c.admit({0.8});
    ASSERT_EQ(p.verdict, Verdict::kAdmitted) << "tenant " << i;
  }
  for (int core = 0; core < 4; ++core)
    EXPECT_NEAR(c.core_load(core), 0.8, 1e-12) << "core " << core;
}

TEST(Admission, DegradedBandBetweenBudgets) {
  AdmissionController c(4, AdmissionPolicy{});
  for (int i = 0; i < 4; ++i) ASSERT_EQ(c.admit({0.8}).verdict, Verdict::kAdmitted);
  // Least-loaded core would reach 1.1: past the 0.9 admit budget but
  // within the 1.25 degrade budget -> admitted with frame shedding.
  const Placement p = c.admit({0.3});
  EXPECT_EQ(p.verdict, Verdict::kDegraded);
  EXPECT_NEAR(p.peak_load, 1.1, 1e-12);
  EXPECT_NEAR(c.total_load(), 3.5, 1e-12);  // degraded demand is committed
}

TEST(Admission, BudgetBoundariesAreInclusive) {
  // The verdict comparisons are <=, so a load landing exactly on a budget
  // stays on the cheaper side of the band: 0.9 is admitted outright and
  // 1.25 is degraded, not rejected. Both constants are exactly
  // representable in binary, so no epsilon is involved.
  AdmissionController a(1, AdmissionPolicy{});
  const Placement at_admit = a.admit({0.9});
  EXPECT_EQ(at_admit.verdict, Verdict::kAdmitted);
  EXPECT_NEAR(at_admit.peak_load, 0.9, 1e-15);

  AdmissionController b(1, AdmissionPolicy{});
  const Placement at_degrade = b.admit({1.25});
  EXPECT_EQ(at_degrade.verdict, Verdict::kDegraded);
  EXPECT_NEAR(at_degrade.peak_load, 1.25, 1e-15);
}

TEST(Admission, JustAboveEachBudgetCrossesTheBand) {
  AdmissionController a(1, AdmissionPolicy{});
  EXPECT_EQ(a.admit({0.9 + 1e-9}).verdict, Verdict::kDegraded);

  AdmissionController b(1, AdmissionPolicy{});
  const Placement p = b.admit({1.25 + 1e-9});
  EXPECT_EQ(p.verdict, Verdict::kRejected);
  EXPECT_NEAR(b.total_load(), 0.0, 1e-12);  // nothing committed
}

TEST(Admission, RejectsWideVirtualCoreEvenOnEmptyPool) {
  AdmissionController c(4, AdmissionPolicy{});
  const Placement p = c.admit({1.3});  // one vcore above the degrade budget
  EXPECT_EQ(p.verdict, Verdict::kRejected);
  EXPECT_TRUE(p.pool_core_of_vcore.empty());
  EXPECT_FALSE(p.reason.empty());
  EXPECT_NEAR(c.total_load(), 0.0, 1e-12);  // rejection commits nothing
}

TEST(Admission, RejectsDemandAbovePoolLimit) {
  // 6.0 PE total against a 4-core pool whose hard limit is 4 x 1.25 = 5.0:
  // rejected regardless of pool state, which makes the CI oversubscriber
  // deterministic under any submission order.
  AdmissionController c(4, AdmissionPolicy{});
  const Placement p = c.admit({1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  EXPECT_EQ(p.verdict, Verdict::kRejected);
  EXPECT_NE(p.reason.find("pool limit"), std::string::npos) << p.reason;
  EXPECT_NEAR(p.demand, 6.0, 1e-12);
}

TEST(Admission, ReleaseRestoresCapacity) {
  AdmissionController c(2, AdmissionPolicy{});
  const std::vector<double> util{0.6, 0.5};
  const Placement p = c.admit(util);
  ASSERT_EQ(p.verdict, Verdict::kAdmitted);
  EXPECT_NEAR(c.total_load(), 1.1, 1e-12);
  c.release(p, util);
  EXPECT_NEAR(c.total_load(), 0.0, 1e-12);
  // The freed pool admits the same tenant again, identically.
  const Placement q = c.admit(util);
  EXPECT_EQ(q.verdict, Verdict::kAdmitted);
  EXPECT_EQ(q.pool_core_of_vcore, p.pool_core_of_vcore);
}

TEST(Admission, DisabledPolicyAdmitsEverything) {
  AdmissionPolicy pol;
  pol.enabled = false;
  AdmissionController c(2, pol);
  const Placement p = c.admit({2.0, 2.0, 2.0});
  EXPECT_EQ(p.verdict, Verdict::kAdmitted);
  ASSERT_EQ(p.pool_core_of_vcore.size(), 3u);  // placement still balances
}

TEST(Admission, VcoreUtilizationFromHandBuiltLoadMap) {
  Graph g;
  g.add<testutil::ScriptedSource>("sensor", std::vector<Item>{});
  g.add<OutputKernel>("a");
  g.add<OutputKernel>("b");

  LoadMap loads;
  LoadModel src, la, lb;
  src.cycles_per_second = 8e6;  // must be excluded: sources model the sensor
  la.cycles_per_second = 4e6;
  lb.cycles_per_second = 9e6;
  loads.set(0, src);
  loads.set(1, la);
  loads.set(2, lb);

  Mapping m;
  m.cores = 2;
  m.core_of = {0, 0, 1};  // sensor+a on vcore 0, b on vcore 1
  const MachineSpec spec;
  const std::vector<double> u = service::vcore_utilization(g, loads, m, spec);
  ASSERT_EQ(u.size(), 2u);
  EXPECT_NEAR(u[0], 4e6 / spec.clock_hz, 1e-12);  // source excluded
  EXPECT_NEAR(u[1], 9e6 / spec.clock_hz, 1e-12);
}

// ---- wire protocol ------------------------------------------------------

TEST(Protocol, RoundTripIsIdentity) {
  TenantSpec s;
  s.name = "cam0";
  s.app = "fig1";
  s.frame = {64, 48};
  s.rate_hz = 150.0;
  s.frames = 30;
  s.bins = 16;
  s.slack_seconds = 0.01;
  s.pace_slowdown = 2.0;
  s.allow_degraded = false;
  // parse_submission stores the plan in the serializer's sorted-key form;
  // canonicalize the input the same way so round-trip is an identity.
  s.fault_plan_json = json::write(
      json::parse(R"({"kernels":[{"match":"conv*","jitter":0.2}]})"));
  s.fault_seed = 7;
  s.fault_seed_set = true;

  const TenantSpec r = service::parse_submission(service::write_submission(s));
  EXPECT_EQ(r.name, s.name);
  EXPECT_EQ(r.app, s.app);
  EXPECT_EQ(r.graph_text, s.graph_text);
  EXPECT_EQ(r.frame.w, s.frame.w);
  EXPECT_EQ(r.frame.h, s.frame.h);
  EXPECT_EQ(r.rate_hz, s.rate_hz);
  EXPECT_EQ(r.frames, s.frames);
  EXPECT_EQ(r.bins, s.bins);
  EXPECT_EQ(r.slack_seconds, s.slack_seconds);
  EXPECT_EQ(r.pace_slowdown, s.pace_slowdown);
  EXPECT_EQ(r.allow_degraded, s.allow_degraded);
  EXPECT_EQ(r.fault_plan_json, s.fault_plan_json);
  EXPECT_EQ(r.fault_seed, s.fault_seed);
  EXPECT_TRUE(r.fault_seed_set);
}

TEST(Protocol, RejectsMalformedSubmissions) {
  using service::parse_submission;
  EXPECT_THROW((void)parse_submission("{"), Error);  // malformed JSON
  EXPECT_THROW((void)parse_submission(R"({"app":"fig1"})"), Error);  // no name
  EXPECT_THROW((void)parse_submission(R"({"name":"t"})"), Error);  // no source
  EXPECT_THROW(  // both app and graph
      (void)parse_submission(R"({"name":"t","app":"fig1","graph":"g"})"),
      Error);
  EXPECT_THROW(  // unknown key: likely a typo, reject loudly
      (void)parse_submission(R"({"name":"t","app":"fig1","rate":60})"), Error);
  EXPECT_THROW(  // frame must be WxH
      (void)parse_submission(R"({"name":"t","app":"fig1","frame":"64"})"),
      Error);
  EXPECT_THROW(  // out-of-range value
      (void)parse_submission(R"({"name":"t","app":"fig1","rate_hz":-5})"),
      Error);
  EXPECT_THROW(  // fault plan validated at submit time
      (void)parse_submission(
          R"({"name":"t","app":"fig1","faults":{"kernels":[{"jitter":-2}]}})"),
      Error);
}

// ---- daemon lifecycle ---------------------------------------------------

/// A calibrated light tenant: ~0.07 PE (fig1) / ~0.03 PE (sobel) on the
/// default machine model, 10 Hz with 50 ms slack — comfortably zero-miss
/// on a shared pool even under sanitizers.
TenantSpec cam(const std::string& name, const std::string& app) {
  TenantSpec s;
  s.name = name;
  s.app = app;
  s.frame = {32, 24};
  s.rate_hz = 10.0;
  s.frames = 3;
  s.bins = 16;
  s.slack_seconds = 0.05;
  s.allow_degraded = false;
  return s;
}

TEST(Service, EightTenantsCompleteZeroMiss) {
  DaemonOptions opt;
  opt.cores = 4;
  Daemon d(opt);
  std::vector<int> ids;
  for (int i = 0; i < 8; ++i)
    ids.push_back(
        d.submit(cam("cam" + std::to_string(i), i % 2 ? "sobel" : "fig1")));
  ASSERT_TRUE(d.wait_idle(60.0));

  for (int id : ids) {
    const service::TenantStatus s = d.tenant(id);
    EXPECT_EQ(s.state, TenantState::kCompleted) << s.name << ": " << s.reason;
    EXPECT_EQ(s.admission, Verdict::kAdmitted) << s.name;
    EXPECT_EQ(s.deadline_misses, 0) << s.name;
    EXPECT_EQ(s.frames_shed, 0) << s.name;
    EXPECT_EQ(s.frames_completed, 3) << s.name;
    EXPECT_GT(s.firings, 0) << s.name;
    EXPECT_GT(s.wall_seconds, 0.0) << s.name;
  }
  const service::PoolStatus p = d.pool();
  EXPECT_EQ(p.completed, 8);
  EXPECT_EQ(p.running, 0);
  EXPECT_NEAR(p.load, 0.0, 1e-9);  // every tenant's capacity was released

  // The status report carries the lines the CI smoke job greps.
  std::ostringstream os;
  d.write_status(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("bpd: pool 4 cores"), std::string::npos) << text;
  EXPECT_NE(text.find("'cam0'"), std::string::npos);
  EXPECT_NE(text.find("state=completed"), std::string::npos);
  EXPECT_NE(text.find("missed=0"), std::string::npos);

  // And the JSON form parses back with pool + per-tenant objects.
  const json::Value v = json::parse(d.status_json());
  const json::Value* pool = v.find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->number_or("completed", 0.0), 8.0);
  const json::Value* tenants = v.find("tenants");
  ASSERT_NE(tenants, nullptr);
}

TEST(Service, OversubscriberRejectedDeterministically) {
  DaemonOptions opt;
  opt.cores = 4;
  Daemon d(opt);
  TenantSpec hog = cam("hog", "fig1");
  hog.frame = {96, 72};
  hog.rate_hz = 300.0;
  hog.allow_degraded = true;  // degraded mode cannot save it either
  const int id = d.submit(hog);

  const service::TenantStatus s = d.tenant(id);
  EXPECT_EQ(s.state, TenantState::kRejected);
  EXPECT_EQ(s.admission, Verdict::kRejected);
  EXPECT_NE(s.reason.find("pool limit"), std::string::npos) << s.reason;
  EXPECT_GT(s.demand, d.pool().capacity);
  EXPECT_NEAR(d.pool().load, 0.0, 1e-9);  // nothing committed
  EXPECT_EQ(d.pool().rejected, 1);
  EXPECT_TRUE(d.wait_idle(1.0));  // nothing is running
}

TEST(Service, FaultedTenantEvictedCleanTenantIsolated) {
  DaemonOptions opt;
  // Wide enough that worst-fit gives the two tenants disjoint pool cores
  // (sobel maps to 3 virtual cores, fig1 to 7): a stalled worker then
  // only ever delays its own tenant, so the isolation check is about the
  // service layer, not about scheduling luck.
  opt.cores = 10;
  opt.evict_misses = 2;
  Daemon d(opt);

  TenantSpec clean = cam("clean", "sobel");
  clean.frames = 5;
  // Fault stalls busy-spin the worker thread, and this may run on a host
  // with a single hardware CPU where a spinning neighbor steals wall
  // clock from everyone. Give the clean tenant enough slack to absorb the
  // bounded blackout before eviction (~4 stalls); the assertion below is
  // about accounting isolation — zero misses, zero faults — not about
  // temporal isolation a one-CPU box cannot provide.
  clean.slack_seconds = 1.0;
  // Stall the serial per-frame merge for 1.5x the frame period on every
  // firing: completions drift +50 ms per frame against a 5 ms slack, so
  // every post-anchor frame misses and eviction is deterministic.
  TenantSpec faulty = cam("faulty", "fig1");
  faulty.frames = 8;
  faulty.slack_seconds = 0.005;
  faulty.fault_plan_json =
      R"({"kernels":[{"match":"merge*","stall_prob":1.0,"stall_seconds":0.15}]})";
  faulty.fault_seed = 1;
  faulty.fault_seed_set = true;

  const int cid = d.submit(clean);
  const int fid = d.submit(faulty);
  ASSERT_TRUE(d.wait_idle(60.0));

  const service::TenantStatus fs = d.tenant(fid);
  EXPECT_EQ(fs.state, TenantState::kEvicted) << fs.reason;
  EXPECT_GE(fs.deadline_misses, 2);
  EXPECT_GT(fs.faults_injected, 0);
  EXPECT_FALSE(fs.reason.empty());

  // The co-resident clean tenant's metrics are untouched by its
  // neighbor's faults: zero injected faults, zero misses, all frames.
  const service::TenantStatus cs = d.tenant(cid);
  EXPECT_EQ(cs.state, TenantState::kCompleted) << cs.reason;
  EXPECT_EQ(cs.deadline_misses, 0);
  EXPECT_EQ(cs.faults_injected, 0);
  EXPECT_EQ(cs.frames_shed, 0);
  EXPECT_EQ(cs.frames_completed, 5);

  EXPECT_EQ(d.pool().evicted, 1);
  EXPECT_EQ(d.pool().completed, 1);
  EXPECT_NEAR(d.pool().load, 0.0, 1e-9);  // eviction released its capacity
}

TEST(Service, EvictedTenantReadmitsImmediately) {
  // Eviction must return the tenant's demand to the ledger synchronously:
  // resubmitting the very same spec right afterwards has to re-admit on
  // the freed capacity, and the name may be reused.
  DaemonOptions opt;
  opt.cores = 4;
  opt.evict_misses = 2;
  Daemon d(opt);

  TenantSpec t = cam("flappy", "fig1");
  t.frames = 8;
  t.slack_seconds = 0.005;
  // Stall the serial merge well past the frame period on every firing so
  // post-anchor frames miss deterministically and eviction is certain.
  t.fault_plan_json =
      R"({"kernels":[{"match":"merge*","stall_prob":1.0,"stall_seconds":0.15}]})";
  t.fault_seed = 1;
  t.fault_seed_set = true;
  const int first = d.submit(t);
  ASSERT_TRUE(d.wait_idle(60.0));
  ASSERT_EQ(d.tenant(first).state, TenantState::kEvicted)
      << d.tenant(first).reason;
  EXPECT_NEAR(d.pool().load, 0.0, 1e-9);

  // Same tenant, faults cleared: admitted again at once and completes.
  t.fault_plan_json.clear();
  t.slack_seconds = 0.05;
  const int second = d.submit(t);
  EXPECT_NE(second, first);
  ASSERT_TRUE(d.wait_idle(60.0));
  const service::TenantStatus s = d.tenant(second);
  EXPECT_EQ(s.admission, Verdict::kAdmitted);
  EXPECT_EQ(s.state, TenantState::kCompleted) << s.reason;
  EXPECT_EQ(s.deadline_misses, 0);
  EXPECT_EQ(d.pool().evicted, 1);
  EXPECT_EQ(d.pool().completed, 1);
  EXPECT_NEAR(d.pool().load, 0.0, 1e-9);
}

TEST(Service, EmptyPoolStatusIsWellFormed) {
  // A daemon that never saw a tenant still reports a coherent pool line
  // and a parseable JSON document with an empty tenants array — the shape
  // monitoring scrapes before the first submission.
  DaemonOptions opt;
  opt.cores = 3;
  Daemon d(opt);

  std::ostringstream os;
  d.write_status(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("bpd: pool 3 cores"), std::string::npos) << text;
  EXPECT_NE(text.find("load 0.00/2.70 PE (0%)"), std::string::npos) << text;
  EXPECT_NE(text.find("0 running, 0 completed, 0 drained, 0 evicted, 0 "
                      "quarantined, 0 rejected, 0 failed"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("tenant "), std::string::npos) << text;

  const json::Value v = json::parse(d.status_json());
  const json::Value* pool = v.find("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->number_or("cores", -1.0), 3.0);
  EXPECT_EQ(pool->number_or("load_pe", -1.0), 0.0);
  EXPECT_EQ(pool->number_or("running", -1.0), 0.0);
  const json::Value* tenants = v.find("tenants");
  ASSERT_NE(tenants, nullptr);
  EXPECT_TRUE(tenants->as_array().empty());
}

TEST(Service, TenantLimitRejectsOverflow) {
  DaemonOptions opt;
  opt.cores = 2;
  opt.max_tenants = 1;
  Daemon d(opt);
  (void)d.submit(cam("a", "sobel"));
  const int id = d.submit(cam("b", "sobel"));
  const service::TenantStatus s = d.tenant(id);
  EXPECT_EQ(s.state, TenantState::kRejected);
  EXPECT_NE(s.reason.find("tenant limit"), std::string::npos) << s.reason;
  EXPECT_TRUE(d.wait_idle(30.0));
}

TEST(Service, UnknownAppRecordedAsFailed) {
  DaemonOptions opt;
  opt.cores = 2;
  Daemon d(opt);
  const int id = d.submit(cam("mystery", "no-such-app"));
  const service::TenantStatus s = d.tenant(id);
  EXPECT_EQ(s.state, TenantState::kFailed);
  EXPECT_FALSE(s.reason.empty());
  EXPECT_TRUE(d.wait_idle(1.0));
}

TEST(Service, BadSubmissionFileRecordedAsFailed) {
  const std::string path = testing::TempDir() + "bpd_bad_submission.json";
  {
    std::ofstream f(path);
    f << R"({"name":"x"})";  // neither app nor graph
  }
  DaemonOptions opt;
  opt.cores = 2;
  Daemon d(opt);
  const int id = d.submit_file(path);
  const service::TenantStatus s = d.tenant(id);
  EXPECT_EQ(s.state, TenantState::kFailed);
  EXPECT_FALSE(s.reason.empty());
  std::remove(path.c_str());
}

TEST(Service, UnpacedBatchModeRunsToCompletion) {
  DaemonOptions opt;
  opt.cores = 2;
  opt.pace = false;
  opt.evict_misses = 0;
  Daemon d(opt);
  const int id = d.submit(cam("batch", "fig1"));
  ASSERT_TRUE(d.wait_idle(30.0));
  const service::TenantStatus s = d.tenant(id);
  EXPECT_EQ(s.state, TenantState::kCompleted) << s.reason;
  EXPECT_EQ(s.deadline_misses, 0);
}

// ---- machine/program split: direct multiplexing ------------------------

std::vector<long> result_bins(const Graph& g, int bins) {
  const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("result"));
  std::vector<long> total(static_cast<size_t>(bins), 0);
  for (const Tile& t : out.tiles())
    for (int i = 0; i < bins; ++i)
      total[static_cast<size_t>(i)] += static_cast<long>(t.at(i, 0));
  return total;
}

Mapping onto_pool(const Mapping& m, int pool_cores) {
  Mapping out;
  out.cores = pool_cores;
  out.core_of.resize(m.core_of.size());
  for (size_t i = 0; i < m.core_of.size(); ++i)
    out.core_of[i] = m.core_of[i] % pool_cores;
  return out;
}

TEST(Machine, TwoProgramsMultiplexOnOneWorkerPool) {
  CompiledApp a = compile(apps::figure1_app({32, 24}, 200.0, 2, 16));
  CompiledApp b = compile(apps::histogram_app({24, 18}, 100.0, 2, 8));
  Graph ga_seq = a.graph.clone();
  ASSERT_TRUE(run_sequential(ga_seq).completed);
  Graph gb_seq = b.graph.clone();
  ASSERT_TRUE(run_sequential(gb_seq).completed);

  rt::Machine machine(3);
  Graph ga = a.graph.clone();
  Graph gb = b.graph.clone();
  const Mapping ma = onto_pool(a.mapping, machine.cores());
  const Mapping mb = onto_pool(b.mapping, machine.cores());
  const RuntimeOptions ropt;  // unpaced, no recorder
  GraphProgram pa(ga, ma, ropt, machine);
  GraphProgram pb(gb, mb, ropt, machine);
  pa.start();
  pb.start();

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  while ((!pa.done() || !pb.done()) &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_TRUE(pa.done());
  ASSERT_TRUE(pb.done());

  const RuntimeResult ra = pa.finish();
  const RuntimeResult rb = pb.finish();
  EXPECT_TRUE(ra.completed);
  EXPECT_TRUE(rb.completed);
  EXPECT_GT(ra.total_firings, 0);
  EXPECT_GT(rb.total_firings, 0);
  // Both programs computed exactly what an isolated sequential run does:
  // sharing workers never leaks data or scheduling between programs.
  EXPECT_EQ(result_bins(ga, 16), result_bins(ga_seq, 16));
  EXPECT_EQ(result_bins(gb, 8), result_bins(gb_seq, 8));
}

}  // namespace
}  // namespace bpp
