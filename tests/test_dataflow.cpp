// Data-flow analysis (paper §III-A): iteration sizes and rates, inset
// propagation, token-paced streams, fractional scales, misalignment
// detection, and feedback seeding (§III-D).

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/dataflow.h"
#include "kernels/kernels.h"
#include "test_util.h"

namespace bpp {
namespace {

const StreamInfo& stream_into(const Graph& g, const DataflowResult& df,
                              const std::string& kernel, const std::string& port) {
  const KernelId k = g.find(kernel);
  const int p = g.kernel(k).input_index(port);
  return df.channel[static_cast<size_t>(*g.in_channel(k, p))];
}

TEST(Dataflow, PaperConvolutionExample) {
  // §III-A verbatim: "if the input to a 5x5 convolution is a 100x100 image
  // at 50Hz, the kernel will have an iteration size of 96x96 at 50Hz" and
  // the output "will be 96x96, at the input rate of 50Hz".
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{100, 100}, 50.0, 1);
  auto& conv = g.add<ConvolutionKernel>("conv", 5, 5);
  auto& coeff = g.add<ConstSource>("coeff", apps::blur_coeff5x5());
  auto& out = g.add<OutputKernel>("out");
  g.connect(in, "out", conv, "in");
  g.connect(coeff, "out", conv, "coeff");
  g.connect(conv, "out", out, "in");

  const DataflowResult df = analyze(g);
  const KernelAnalysis& a = df.kernel[static_cast<size_t>(g.find("conv"))];
  ASSERT_TRUE(a.resolved);
  EXPECT_EQ(a.iterations, (Size2{96, 96}));
  EXPECT_DOUBLE_EQ(a.rate_hz, 50.0);

  const StreamInfo& s = stream_into(g, df, "out", "in");
  EXPECT_EQ(s.frame, (Size2{96, 96}));
  EXPECT_DOUBLE_EQ(s.rate_hz, 50.0);
  EXPECT_EQ(s.inset, (Offset2{2.0, 2.0}));
  EXPECT_EQ(s.items_per_frame, 96L * 96);
}

TEST(Dataflow, Figure8Insets) {
  // The median output is inset (1,1) and the convolution output (2,2)
  // from the shared input; their frames differ by the halo difference.
  Graph g = apps::figure1_app({100, 100}, 50.0, 1);
  const DataflowResult df = analyze(g, Strictness::Lenient);

  const StreamInfo& med = stream_into(g, df, "subtract", "in0");
  const StreamInfo& conv = stream_into(g, df, "subtract", "in1");
  EXPECT_EQ(med.frame, (Size2{98, 98}));
  EXPECT_EQ(med.inset, (Offset2{1.0, 1.0}));
  EXPECT_EQ(conv.frame, (Size2{96, 96}));
  EXPECT_EQ(conv.inset, (Offset2{2.0, 2.0}));

  // And the subtract kernel is flagged as misaligned.
  ASSERT_EQ(df.misaligned.size(), 1u);
  EXPECT_EQ(df.misaligned[0].kernel, g.find("subtract"));
  EXPECT_FALSE(df.complete());
}

TEST(Dataflow, StrictThrowsOnMisalignment) {
  Graph g = apps::figure1_app({100, 100}, 50.0, 1);
  EXPECT_THROW((void)analyze(g, Strictness::Strict), AnalysisError);
}

TEST(Dataflow, MisalignmentStopsPropagationDownstream) {
  Graph g = apps::figure1_app({64, 64}, 50.0, 1);
  const DataflowResult df = analyze(g, Strictness::Lenient);
  // The histogram is downstream of the misaligned subtract: unresolved.
  EXPECT_FALSE(df.kernel[static_cast<size_t>(g.find("histogram"))].resolved);
}

TEST(Dataflow, TokenPacedHistogramOutput) {
  Graph g = apps::histogram_app({40, 30}, 25.0, 1, 32);
  const DataflowResult df = analyze(g);
  const StreamInfo& s = stream_into(g, df, "merge", "partial");
  EXPECT_EQ(s.item, (Size2{32, 1}));
  EXPECT_EQ(s.items_per_frame, 1);  // once per frame (EOF-paced)
  EXPECT_FALSE(s.pixel_space);
  EXPECT_DOUBLE_EQ(s.rate_hz, 25.0);
}

TEST(Dataflow, HistogramCycleAccounting) {
  Graph g = apps::histogram_app({40, 30}, 25.0, 1, 32);
  const DataflowResult df = analyze(g);
  const KernelAnalysis& a = df.kernel[static_cast<size_t>(g.find("histogram"))];
  // count: bins/2+5 = 21 cycles x 1200 pixels, finishCount: 3*32+3 once.
  EXPECT_EQ(a.cycles_per_frame, 21L * 1200 + (3 * 32 + 3));
  EXPECT_EQ(a.firings_per_frame, 1200 + 1);
}

TEST(Dataflow, DownsampleScaleAndFractionalInset) {
  Graph g = apps::downsample_app({16, 12}, 10.0, 1);
  const DataflowResult df = analyze(g);
  const StreamInfo& s = stream_into(g, df, "conv3x3", "in");
  EXPECT_EQ(s.frame, (Size2{8, 6}));
  EXPECT_EQ(s.scale, (Offset2{2.0, 2.0}));       // 2 origin px per stream px
  EXPECT_EQ(s.inset, (Offset2{0.5, 0.5}));       // §II-A footnote 2
  // Downstream of the conv the inset grows by 1 stream pixel = 2 origin px.
  const StreamInfo& o = stream_into(g, df, "result", "in");
  EXPECT_EQ(o.frame, (Size2{6, 4}));
  EXPECT_EQ(o.inset, (Offset2{2.5, 2.5}));
}

TEST(Dataflow, BayerHalvesNothingButKeepsScale) {
  Graph g = apps::bayer_app({16, 12}, 10.0, 1);
  const DataflowResult df = analyze(g);
  const StreamInfo& s = stream_into(g, df, "result", "in");
  // (4x4)[2,2] window emitting (2x2): 7x5 iterations -> 14x10 pixels.
  EXPECT_EQ(s.frame, (Size2{14, 10}));
  EXPECT_EQ(s.scale, (Offset2{1.0, 1.0}));
  EXPECT_EQ(s.item, (Size2{2, 2}));
}

TEST(Dataflow, WindowLargerThanFrameFails) {
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{4, 4}, 10.0, 1);
  auto& conv = g.add<ConvolutionKernel>("conv", 5, 5);
  auto& coeff = g.add<ConstSource>("coeff", Tile(Size2{5, 5}, 1.0));
  auto& out = g.add<OutputKernel>("out");
  g.connect(in, "out", conv, "in");
  g.connect(coeff, "out", conv, "coeff");
  g.connect(conv, "out", out, "in");
  EXPECT_THROW((void)analyze(g), AnalysisError);
}

TEST(Dataflow, MismatchedRatesFail) {
  Graph g;
  auto& a = g.add<InputKernel>("a", Size2{4, 4}, 10.0, 1);
  auto& b = g.add<InputKernel>("b", Size2{4, 4}, 20.0, 1);
  Kernel& sub = g.add_kernel(make_subtract("sub"));
  auto& out = g.add<OutputKernel>("out");
  g.connect(a, "out", sub, "in0");
  g.connect(b, "out", sub, "in1");
  g.connect(sub, "out", out, "in");
  EXPECT_THROW((void)analyze(g), AnalysisError);
}

TEST(Dataflow, TwoEqualInputsAlign) {
  Graph g;
  auto& in = g.add<InputKernel>("in", Size2{8, 8}, 10.0, 1);
  Kernel& sub = g.add_kernel(make_subtract("sub"));
  auto& out = g.add<OutputKernel>("out");
  g.connect(in, "out", sub, "in0");
  g.connect(in, "out", sub, "in1");
  g.connect(sub, "out", out, "in");
  const DataflowResult df = analyze(g);
  EXPECT_TRUE(df.complete());
  EXPECT_EQ(df.kernel[static_cast<size_t>(g.find("sub"))].iterations,
            (Size2{8, 8}));
}

TEST(Dataflow, FeedbackLoopSeedsFromSpec) {
  Graph g = apps::feedback_app({8, 6}, 10.0, 2, 0.25);
  const DataflowResult df = analyze(g);
  EXPECT_TRUE(df.complete());
  const StreamInfo& prev = stream_into(g, df, "mix", "prev");
  EXPECT_EQ(prev.frame, (Size2{8, 6}));
  EXPECT_DOUBLE_EQ(prev.rate_hz, 10.0);
  const KernelAnalysis& mix = df.kernel[static_cast<size_t>(g.find("mix"))];
  EXPECT_TRUE(mix.resolved);
  EXPECT_EQ(mix.iterations, (Size2{8, 6}));
}

TEST(Dataflow, MemoryIncludesStateAndPortBuffers) {
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{10, 10}, 10.0, 1);
  auto& conv = g.add<ConvolutionKernel>("conv", 3, 3);
  auto& coeff = g.add<ConstSource>("coeff", Tile(Size2{3, 3}, 1.0));
  auto& out = g.add<OutputKernel>("out");
  g.connect(in, "out", conv, "in");
  g.connect(coeff, "out", conv, "coeff");
  g.connect(conv, "out", out, "in");
  const DataflowResult df = analyze(g);
  const KernelAnalysis& a = df.kernel[static_cast<size_t>(g.find("conv"))];
  // state (10 + 9 from the two methods) + ports (9 in + 9 coeff + 1 out).
  EXPECT_EQ(a.memory_words, 10 + 9 + 9 + 9 + 1);
}

TEST(Dataflow, ReadWriteVolumes) {
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{10, 10}, 10.0, 1);
  auto& conv = g.add<ConvolutionKernel>("conv", 3, 3);
  auto& coeff = g.add<ConstSource>("coeff", Tile(Size2{3, 3}, 1.0));
  auto& out = g.add<OutputKernel>("out");
  g.connect(in, "out", conv, "in");
  g.connect(coeff, "out", conv, "coeff");
  g.connect(conv, "out", out, "in");
  const DataflowResult df = analyze(g);
  const KernelAnalysis& a = df.kernel[static_cast<size_t>(g.find("conv"))];
  // 8x8 iterations, 9 words read per iteration; coeff load is untimed.
  EXPECT_EQ(a.read_words_per_frame, 64L * 9);
  // 64 outputs + 8 EOL + 1 EOF words.
  EXPECT_EQ(a.write_words_per_frame, 64 + 8 + 1);
}

TEST(Dataflow, UntimedParameterStreamsCostNothing) {
  Graph g = apps::multi_convolution_app({16, 12}, 10.0, 1);
  const DataflowResult df = analyze(g, Strictness::Lenient);
  for (const std::string name : {"coeffA", "coeffB", "coeffC"}) {
    const KernelAnalysis& a = df.kernel[static_cast<size_t>(g.find(name))];
    EXPECT_DOUBLE_EQ(a.rate_hz, 0.0) << name;
  }
}

}  // namespace
}  // namespace bpp
