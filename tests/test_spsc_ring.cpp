// SpscRing: capacity/wrap-around semantics single-threaded, FIFO order
// under a real producer/consumer thread pair, and the end-to-end guarantee
// the runtime builds on it: threaded output bit-identical to sequential.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "core/spsc_ring.h"

namespace bpp {
namespace {

TEST(SpscRing, FifoOrderAndEmptyFull) {
  SpscRing<int> r(4);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.front(), nullptr);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_TRUE(r.full());
  EXPECT_FALSE(r.try_push(99));
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(r.front(), nullptr);
    EXPECT_EQ(*r.front(), i);
    r.pop();
  }
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.front(), nullptr);
}

TEST(SpscRing, CapacityIsRespectedNotRoundedUp) {
  // Slot count rounds up to a power of two internally, but the usable
  // capacity stays exactly what was asked for (back-pressure depends on it).
  SpscRing<int> r(5);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(r.try_push(i)) << i;
  EXPECT_FALSE(r.try_push(5));
  EXPECT_EQ(r.size_approx(), 5u);
}

TEST(SpscRing, WrapAroundKeepsOrder) {
  // Drive the indices far past the slot count so the mask wraps many times.
  SpscRing<std::uint64_t> r(3);
  std::uint64_t next_in = 0, next_out = 0;
  for (int round = 0; round < 1000; ++round) {
    while (r.try_push(std::uint64_t{next_in})) ++next_in;
    while (!r.empty()) {
      ASSERT_NE(r.front(), nullptr);
      EXPECT_EQ(*r.front(), next_out);
      ++next_out;
      r.pop();
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_GE(next_in, 3000u);
}

TEST(SpscRing, PopDestroysTheSlot) {
  // pop() must release the slot's payload immediately (the runtime parks
  // tiles in rings; holding them would pin tile memory until overwrite).
  auto counter = std::make_shared<int>(0);
  SpscRing<std::shared_ptr<int>> r(2);
  ASSERT_TRUE(r.try_push(std::shared_ptr<int>(counter)));
  EXPECT_EQ(counter.use_count(), 2);
  r.pop();
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(SpscRing, TwoThreadStressPreservesSequence) {
  // Small capacity forces constant wrap-around and full/empty boundary
  // crossings — the cases where a stale cached index would corrupt order.
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> ring(8);

  // Yield when blocked: on a single-CPU host a raw spin burns a whole
  // scheduler quantum before the peer can run, serializing the test.
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems;) {
      if (ring.try_push(std::uint64_t{i}))
        ++i;
      else
        std::this_thread::yield();
    }
  });

  std::uint64_t seen = 0, checksum = 0;
  bool ordered = true;
  while (seen < kItems) {
    const std::uint64_t* v = ring.front();
    if (!v) {
      std::this_thread::yield();
      continue;
    }
    ordered = ordered && (*v == seen);
    checksum += *v;
    ring.pop();
    ++seen;
  }
  producer.join();

  EXPECT_TRUE(ordered);
  EXPECT_EQ(checksum, kItems * (kItems - 1) / 2);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, ThreadedRuntimeMatchesSequentialBitExact) {
  // The whole point of the lock-free channel layer: run_threaded over the
  // compiled Fig. 1 app must produce byte-identical sink tiles to
  // run_sequential, for every thread count.
  const Size2 frame{32, 24};
  CompiledApp app = compile(apps::figure1_app(frame, 200.0, 2, 16));

  Graph seq = app.graph.clone();
  ASSERT_TRUE(run_sequential(seq).completed);
  const auto& want = dynamic_cast<const OutputKernel&>(seq.by_name("result"));

  for (int threads : {2, 4}) {
    Graph par = app.graph.clone();
    Mapping m;
    m.cores = threads;
    m.core_of.resize(static_cast<size_t>(par.kernel_count()));
    for (int k = 0; k < par.kernel_count(); ++k)
      m.core_of[static_cast<size_t>(k)] = k % threads;
    ASSERT_TRUE(run_threaded(par, m).completed) << threads << " threads";
    const auto& got =
        dynamic_cast<const OutputKernel&>(par.by_name("result"));
    ASSERT_EQ(got.tiles().size(), want.tiles().size()) << threads;
    for (size_t i = 0; i < want.tiles().size(); ++i)
      EXPECT_EQ(got.tiles()[i], want.tiles()[i])
          << "tile " << i << ", " << threads << " threads";
  }
}

}  // namespace
}  // namespace bpp
