// Reuse-optimized buffering extension (paper Fig. 9 — described there but
// "not implemented for the results presented here"): striped per-replica
// buffer slices with reuse-linked transfers and decoupling output FIFOs.

#include <gtest/gtest.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "core/validation.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

namespace bpp {
namespace {

Graph single_conv_app(Size2 frame, double rate, int frames) {
  Graph g;
  auto& in = g.add<InputKernel>("input", frame, rate, frames);
  auto& conv = g.add<ConvolutionKernel>("conv5x5", 5, 5);
  auto& coeff = g.add<ConstSource>("coeff", apps::blur_coeff5x5());
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", conv, "in");
  g.connect(coeff, "out", conv, "coeff");
  g.connect(conv, "out", out, "in");
  return g;
}

CompileOptions reuse_options(bool on) {
  CompileOptions opt;
  opt.reuse_opt = on;
  opt.machine.mem_words = 4096;  // keep the buffer whole: stripe-eligible
  return opt;
}

TEST(ReuseOpt, StripesTheConvolution) {
  CompiledApp app =
      compile(single_conv_app({48, 36}, 420.0, 1), reuse_options(true));
  EXPECT_EQ(app.parallelization.reuse_striped, 1);
  const int p = app.parallelization.factors.at("conv5x5");
  EXPECT_GT(p, 1);
  EXPECT_TRUE(validate(app.graph).empty());

  // Per-replica slice buffers with reuse links and output FIFOs exist.
  int reuse_slices = 0, fifos = 0;
  for (int k = 0; k < app.graph.kernel_count(); ++k) {
    if (const auto* b = dynamic_cast<const BufferKernel*>(&app.graph.kernel(k))) {
      if (b->reuse_link()) ++reuse_slices;
      if (b->out_window() == Size2{1, 1}) ++fifos;
    }
  }
  EXPECT_EQ(reuse_slices, p);
  EXPECT_EQ(fifos, p);
}

TEST(ReuseOpt, WindowChargeModel) {
  // Fig. 5(b): in the steady state 24 of 25 elements are reused, so only
  // win.h (5 words, one fresh column) is charged per interior window.
  BufferKernel b("b", {1, 1}, {5, 5}, {1, 1}, {20, 20});
  EXPECT_EQ(b.window_charge(3, 3), 25);  // reuse off: full window
  b.set_reuse_link(true);
  EXPECT_EQ(b.window_charge(0, 0), 25);  // cold start
  EXPECT_EQ(b.window_charge(0, 3), 5);   // row start: one fresh row
  EXPECT_EQ(b.window_charge(3, 3), 5);   // interior: one fresh column
  EXPECT_DOUBLE_EQ(1.0 - 5.0 / 25.0, 0.8);  // 20 of 25 via columns...
  // ...and the full 24/25 shows in aggregate: per (96x96)-iteration frame
  // the charged volume is 25 + 95*5 + 95*(25... (validated in the bench).
}

TEST(ReuseOpt, FunctionallyIdenticalToRoundRobin) {
  const Size2 frame{32, 24};
  CompiledApp rr =
      compile(single_conv_app(frame, 420.0, 2), reuse_options(false));
  CompiledApp striped =
      compile(single_conv_app(frame, 420.0, 2), reuse_options(true));
  ASSERT_GT(striped.parallelization.reuse_striped, 0);

  ASSERT_TRUE(run_sequential(rr.graph).completed);
  ASSERT_TRUE(run_sequential(striped.graph).completed);

  const auto& a = dynamic_cast<const OutputKernel&>(rr.graph.by_name("result"));
  const auto& b =
      dynamic_cast<const OutputKernel&>(striped.graph.by_name("result"));
  ASSERT_EQ(a.frames().size(), 2u);
  ASSERT_EQ(b.frames().size(), 2u);
  for (size_t f = 0; f < 2; ++f) EXPECT_EQ(a.frames()[f], b.frames()[f]);

  // And both match the reference.
  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const Tile want = ref::convolve(img, apps::blur_coeff5x5());
  for (int y = 0; y < want.height(); ++y)
    for (int x = 0; x < want.width(); ++x)
      EXPECT_NEAR(b.frames()[0].at(x, y), want.at(x, y), 1e-9);
}

TEST(ReuseOpt, ReducesTransferCycles) {
  const Size2 frame{48, 36};
  auto measure = [&](bool reuse) {
    CompiledApp app =
        compile(single_conv_app(frame, 420.0, 2), reuse_options(reuse));
    SimOptions so;
    so.machine = app.options.machine;
    const SimResult r = simulate(app.graph, app.mapping, so);
    EXPECT_TRUE(r.completed) << r.diagnostics;
    const CoreStats t = r.totals();
    return t.read_cycles + t.write_cycles;
  };
  const double rr = measure(false);
  const double striped = measure(true);
  EXPECT_LT(striped, 0.75 * rr)
      << "round-robin " << rr << " vs striped " << striped;
}

TEST(ReuseOpt, MeetsRealTime) {
  CompiledApp app =
      compile(single_conv_app({48, 36}, 420.0, 2), reuse_options(true));
  SimOptions so;
  so.machine = app.options.machine;
  const SimResult r = simulate(app.graph, app.mapping, so);
  EXPECT_TRUE(r.completed) << r.diagnostics;
  EXPECT_TRUE(r.realtime_met) << r.max_input_lag_seconds;
}

TEST(ReuseOpt, Figure1StillCorrectEndToEnd) {
  CompileOptions opt;
  opt.reuse_opt = true;
  const Size2 frame{48, 36};
  const int bins = 64;
  CompiledApp app = compile(apps::figure1_app(frame, 420.0, 1, bins), opt);
  EXPECT_GE(app.parallelization.reuse_striped, 1);
  ASSERT_TRUE(run_sequential(app.graph).completed);

  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const auto want = ref::figure1_histogram(img, apps::blur_coeff5x5(),
                                           apps::diff_bins(bins));
  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  ASSERT_EQ(out.tiles().size(), 1u);
  for (int i = 0; i < bins; ++i)
    EXPECT_EQ(static_cast<long>(out.tiles()[0].at(i, 0)),
              want[static_cast<size_t>(i)]);
}

TEST(ReuseOpt, MultiInputKernelsFallBackToRoundRobin) {
  // The subtract kernel has two data inputs: never striped.
  CompileOptions opt;
  opt.reuse_opt = true;
  CompiledApp app = compile(apps::figure1_app({48, 36}, 420.0, 1, 64), opt);
  for (int k = 0; k < app.graph.kernel_count(); ++k) {
    const std::string& n = app.graph.kernel(k).name();
    if (n.rfind("subtract", 0) == 0)
      EXPECT_EQ(n.find("obuf"), std::string::npos);
  }
}

}  // namespace
}  // namespace bpp
