// Threaded host runtime: functional equivalence across mappings and
// thread counts, watchdog behavior, and termination.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "kernels/kernels.h"
#include "obs/recorder.h"
#include "ref/reference.h"
#include "runtime/machine.h"
#include "runtime/program.h"
#include "runtime/runtime.h"
#include "test_util.h"

namespace bpp {
namespace {

std::vector<long> result_bins(const Graph& g, int bins) {
  const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("result"));
  std::vector<long> total(static_cast<size_t>(bins), 0);
  for (const Tile& t : out.tiles())
    for (int i = 0; i < bins; ++i)
      total[static_cast<size_t>(i)] += static_cast<long>(t.at(i, 0));
  return total;
}

TEST(Runtime, SequentialEqualsThreadedOnFig1) {
  const Size2 frame{32, 24};
  const int frames = 2, bins = 16;
  CompiledApp app = compile(apps::figure1_app(frame, 200.0, frames, bins));

  Graph seq = app.graph.clone();
  ASSERT_TRUE(run_sequential(seq).completed);
  Graph par = app.graph.clone();
  ASSERT_TRUE(run_threaded(par, app.mapping).completed);

  EXPECT_EQ(result_bins(seq, bins), result_bins(par, bins));
}

TEST(Runtime, ArbitraryMappingsAreEquivalent) {
  // Any partition of kernels onto threads computes the same result.
  const Size2 frame{24, 18};
  CompiledApp app = compile(apps::histogram_app(frame, 100.0, 2, 8));
  std::vector<long> want;
  for (int threads : {1, 2, 3, 5}) {
    Graph g = app.graph.clone();
    Mapping m;
    m.cores = threads;
    m.core_of.resize(static_cast<size_t>(g.kernel_count()));
    for (int k = 0; k < g.kernel_count(); ++k)
      m.core_of[static_cast<size_t>(k)] = k % threads;
    ASSERT_TRUE(run_threaded(g, m).completed) << threads << " threads";
    const auto got = result_bins(g, 8);
    if (want.empty())
      want = got;
    else
      EXPECT_EQ(got, want) << threads << " threads";
  }
}

TEST(Runtime, WatchdogFiresOnStalledGraph) {
  // A subtract fed by one silent branch never fires and never terminates.
  Graph g;
  auto& a = g.add<testutil::ScriptedSource>(
      "a", std::vector<Item>{testutil::px(1)});
  auto& b = g.add<testutil::ScriptedSource>("b", std::vector<Item>{});
  Kernel& sub = g.add_kernel(make_subtract("sub"));
  auto& sink = g.add<testutil::ItemSink>("sink");
  g.connect(a, "out", sub, "in0");
  g.connect(b, "out", sub, "in1");
  g.connect(sub, "out", sink, "in");

  RuntimeOptions opt;
  opt.watchdog_seconds = 0.2;
  const RuntimeResult r = run_sequential(g, opt);
  EXPECT_FALSE(r.completed);
  EXPECT_TRUE(r.watchdog_fired);
  EXPECT_FALSE(r.diagnostics.empty());
}

TEST(Runtime, CountsFirings) {
  Graph g = apps::histogram_app({8, 6}, 50.0, 1, 4);
  const RuntimeResult r = run_sequential(g);
  ASSERT_TRUE(r.completed);
  // At least one firing per pixel at the histogram plus merge and sink work.
  EXPECT_GT(r.total_firings, 8 * 6);
}

TEST(Runtime, KernelFiringsSumToTotal) {
  CompiledApp app = compile(apps::histogram_app({16, 12}, 80.0, 1, 8));
  const RuntimeResult r = run_threaded(app.graph, app.mapping);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  ASSERT_EQ(r.kernel_firings.size(),
            static_cast<size_t>(app.graph.kernel_count()));
  long sum = 0;
  for (const long f : r.kernel_firings) {
    EXPECT_GE(f, 0);
    sum += f;
  }
  EXPECT_EQ(sum, r.total_firings);
  // Every non-source kernel processed at least the end-of-stream token
  // (source releases are not firings in the host runtime).
  for (KernelId k = 0; k < app.graph.kernel_count(); ++k)
    if (!app.graph.kernel(k).is_source())
      EXPECT_GT(r.kernel_firings[static_cast<size_t>(k)], 0)
          << app.graph.kernel(k).name();
}

TEST(Runtime, ChannelHighWaterWithinCapacity) {
  CompiledApp app = compile(apps::pipeline_app({16, 12}, 80.0, 1));
  RuntimeOptions opt;
  opt.channel_capacity = 64;
  const RuntimeResult r = run_threaded(app.graph, app.mapping, opt);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  ASSERT_EQ(r.channel_high_water.size(),
            static_cast<size_t>(app.graph.channel_count()));
  bool any_used = false;
  for (const long hw : r.channel_high_water) {
    EXPECT_GE(hw, -1);  // -1 marks dead channels
    // try_push can observe one in-flight item beyond nominal capacity.
    EXPECT_LE(hw, opt.channel_capacity + 1);
    if (hw > 0) any_used = true;
  }
  EXPECT_TRUE(any_used);
}

TEST(Runtime, RecorderCapturesWallClockTrace) {
  CompiledApp app = compile(apps::histogram_app({16, 12}, 80.0, 1, 8));
  obs::Recorder rec;
  RuntimeOptions opt;
  opt.recorder = &rec;
  const RuntimeResult r = run_threaded(app.graph, app.mapping, opt);
  ASSERT_TRUE(r.completed) << r.diagnostics;

  const obs::Trace& t = rec.trace();
  EXPECT_EQ(t.clock, obs::TraceClock::kWall);
  EXPECT_EQ(t.cores, app.mapping.cores);
  EXPECT_GT(t.duration_seconds, 0.0);
  long firings = 0;
  for (const obs::TraceEvent& e : t.events) {
    EXPECT_GE(e.t1, e.t0);
    if (e.kind == obs::EventKind::kFiring) {
      ++firings;
      ASSERT_GE(e.kernel, 0);
      ASSERT_LT(e.kernel, app.graph.kernel_count());
    }
  }
  if (t.dropped_events == 0) EXPECT_EQ(firings, r.total_firings);
  EXPECT_EQ(rec.metrics().counter("runtime.total_firings").value(),
            r.total_firings);
}

TEST(Runtime, MultiFrameFeedbackTerminates) {
  Graph g = apps::feedback_app({8, 6}, 50.0, 3, 0.5);
  const RuntimeResult r = run_sequential(g);
  EXPECT_TRUE(r.completed) << r.diagnostics;
  const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("result"));
  EXPECT_EQ(out.frames().size(), 3u);
}

TEST(Runtime, MappingMustCoverGraph) {
  Graph g = apps::histogram_app({8, 6}, 25.0, 1);
  Mapping bad;
  bad.cores = 1;
  bad.core_of = {0};
  EXPECT_THROW((void)run_threaded(g, bad), ExecutionError);
}

TEST(Runtime, BenchmarkAppsAllRunToCompletion) {
  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"bayer", apps::bayer_app({16, 12}, 50.0, 2)});
  cases.push_back({"hist", apps::histogram_app({16, 12}, 50.0, 2)});
  cases.push_back({"pbuf", apps::parallel_buffer_app({32, 24}, 50.0, 1)});
  cases.push_back({"mconv", apps::multi_convolution_app({24, 20}, 50.0, 1)});
  cases.push_back({"pipe", apps::pipeline_app({16, 12}, 50.0, 2)});
  cases.push_back({"sobel", apps::sobel_app({16, 12}, 50.0, 1, 60.0)});
  cases.push_back({"down", apps::downsample_app({16, 12}, 50.0, 1)});
  for (auto& c : cases) {
    CompileOptions opt;
    opt.machine = machines::roomy();
    CompiledApp app = compile(std::move(c.g), opt);
    EXPECT_TRUE(run_sequential(app.graph).completed) << c.name;
  }
}


TEST(Runtime, PacedInputsMeetWallClockSchedule) {
  // With pace_inputs the host runtime releases pixels on the real-time
  // schedule; on an idle machine a modest rate runs without deadline
  // misses and the wall time tracks the input span.
  const double rate = 50.0;
  const int frames = 3;
  CompiledApp app = compile(apps::histogram_app({16, 12}, rate, frames, 8));
  RuntimeOptions opt;
  opt.pace_inputs = true;
  const RuntimeResult r = run_threaded(app.graph, app.mapping, opt);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  const double span = frames / rate;
  EXPECT_GE(r.wall_seconds, 0.8 * span);
  EXPECT_LT(r.wall_seconds, 3.0 * span);
  // Host scheduler quanta (this may be a single-CPU box) can delay
  // individual releases; the lag must stay bounded, not zero.
  EXPECT_LT(r.max_release_lag_seconds, 0.1)
      << r.delayed_releases << " delayed releases";
}

TEST(Runtime, LagToleranceZeroCountsEveryLateRelease) {
  // The default tolerance absorbs host-scheduler wakeup quanta; pinning it
  // to zero makes every release count as late (wall time is measured after
  // the deadline by construction, so lag is strictly positive). Guards the
  // option actually reaching the release-lag accounting.
  CompiledApp app = compile(apps::histogram_app({12, 8}, 100.0, 2, 8));
  RuntimeOptions opt;
  opt.pace_inputs = true;
  opt.lag_tolerance_seconds = 0.0;
  const RuntimeResult r = run_threaded(app.graph, app.mapping, opt);
  ASSERT_TRUE(r.completed) << r.diagnostics;
  EXPECT_GT(r.delayed_releases, 0);
  EXPECT_GT(r.max_release_lag_seconds, 0.0);
}

TEST(Runtime, PacedRunReportsFiringsHighWaterAndObsGauges) {
  // Under pace_inputs the result still carries exact bookkeeping: per-kernel
  // firing counts sum to the total, channel high-water marks are sane, and
  // the paced-release accounting surfaces in the metrics registry alongside
  // the tracked frames.
  const int frames = 2;
  CompiledApp app = compile(apps::histogram_app({16, 12}, 100.0, frames, 8));
  Graph g = app.graph.clone();
  obs::Recorder rec;
  RuntimeOptions opt;
  opt.pace_inputs = true;
  opt.recorder = &rec;
  const RuntimeResult r = run_threaded(g, app.mapping, opt);
  ASSERT_TRUE(r.completed) << r.diagnostics;

  ASSERT_EQ(r.kernel_firings.size(),
            static_cast<size_t>(g.kernel_count()));
  long sum = 0;
  for (long f : r.kernel_firings) sum += f;
  EXPECT_EQ(sum, r.total_firings);

  ASSERT_EQ(r.channel_high_water.size(),
            static_cast<size_t>(g.channel_count()));
  for (ChannelId c = 0; c < g.channel_count(); ++c) {
    const long hw = r.channel_high_water[static_cast<size_t>(c)];
    if (g.channel(c).alive) {
      EXPECT_GE(hw, 0) << "channel " << c;
    } else {
      EXPECT_EQ(hw, -1) << "channel " << c;
    }
  }

  obs::MetricsRegistry& m = rec.metrics();
  EXPECT_EQ(m.counter("runtime.delayed_releases").value(),
            r.delayed_releases);
  EXPECT_DOUBLE_EQ(m.gauge("runtime.max_release_lag_seconds").value(),
                   r.max_release_lag_seconds);
  // Paced-only gauges expose the schedule the run followed.
  EXPECT_DOUBLE_EQ(m.gauge("runtime.lag_tolerance_seconds").value(),
                   opt.lag_tolerance_seconds);
  EXPECT_DOUBLE_EQ(m.gauge("runtime.pace_slowdown").value(),
                   opt.pace_slowdown);

  // Both frame boundaries were traced for every frame. Each source emits a
  // start for every frame it releases (auxiliary one-shot sources add a
  // frame-0 start), so starts are at least one per frame; sinks close each
  // frame exactly once.
  EXPECT_EQ(m.counter("trace.frames").value(), frames);
  EXPECT_EQ(m.counter("trace.incomplete_frames").value(), 0);
  long starts = 0, ends = 0;
  for (const obs::TraceEvent& e : rec.trace().events) {
    if (e.kind == obs::EventKind::kFrameStart) ++starts;
    if (e.kind == obs::EventKind::kFrameEnd) ++ends;
  }
  EXPECT_GE(starts, frames);
  EXPECT_EQ(ends, frames);
}

TEST(Runtime, PacedSlowdownStretchesTheRun) {
  const double rate = 100.0;
  CompiledApp app = compile(apps::histogram_app({12, 8}, rate, 2, 8));
  RuntimeOptions opt;
  opt.pace_inputs = true;
  opt.pace_slowdown = 4.0;
  Graph g = app.graph.clone();
  const RuntimeResult r = run_threaded(g, app.mapping, opt);
  ASSERT_TRUE(r.completed);
  EXPECT_GE(r.wall_seconds, 0.8 * 4.0 * 2 / rate);
}

TEST(Compile, WarnsWhenSerialKernelExceedsOnePE) {
  // The event detector is a serial scan-order FSM; at a pixel rate beyond
  // one slow PE, compile() surfaces the infeasibility instead of letting
  // the simulation quietly miss real time.
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{32, 24}, 400.0, 1);
  auto& det = g.add<EventDetectKernel>("detect", 150.0, 4.0);
  auto& hand = g.add<EventHandlerKernel>("handler");
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", det, "in");
  g.connect(det, "out", hand, "in");
  g.connect(hand, "out", out, "in");

  CompileOptions opt;
  opt.machine.clock_hz = 1e6;
  CompiledApp app = compile(std::move(g), opt);
  bool warned = false;
  for (const std::string& w : app.parallelization.warnings)
    warned = warned || (w.find("infeasible") != std::string::npos &&
                        w.find("detect") != std::string::npos);
  EXPECT_TRUE(warned);
}

TEST(Compile, WarnsWhenDependencyEdgeCapsNeededParallelism) {
  // A dependency edge from a serial stage onto a hungry stage caps it
  // below its demand.
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{32, 24}, 400.0, 1);
  Kernel& cheap = g.add_kernel(std::make_unique<UnaryOpKernel>(
      "cheap", [](double v) { return v; }, 4));
  Kernel& hungry = g.add_kernel(std::make_unique<UnaryOpKernel>(
      "hungry", [](double v) { return v * 2; }, 400));
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", cheap, "in");
  g.connect(cheap, "out", hungry, "in");
  g.connect(hungry, "out", out, "in");
  g.add_dependency(cheap, hungry);

  CompiledApp app = compile(std::move(g));
  bool warned = false;
  for (const std::string& w : app.parallelization.warnings)
    warned = warned || w.find("caps parallelism") != std::string::npos;
  EXPECT_TRUE(warned);
  EXPECT_FALSE(app.parallelization.factors.count("hungry"));
}

// Regression stress for the two-phase start() protocol: attach() must
// register a program on the timed rosters *before* the initial ready set
// is seeded, or a worker can pop a seeded node while the rosters are
// still being written. The single-program tests above never widen that
// window — it only opens when other programs keep the workers hot while
// a new one attaches. So: keep a paced background program in flight on a
// shared machine and have two threads churn short-lived programs through
// start()/finish() against it. Runs in the TSan CI job (test_runtime
// target), where any resurrected race trips halt_on_error.
TEST(Machine, AttachDetachChurnWhileFramesInFlight) {
  rt::Machine machine(3);
  auto pool = [&](const Mapping& m) {
    Mapping out;
    out.cores = machine.cores();
    out.core_of.resize(m.core_of.size());
    for (size_t i = 0; i < m.core_of.size(); ++i)
      out.core_of[i] = m.core_of[i] % out.cores;
    return out;
  };

  // Background tenant: paced so frames stay in flight for the whole
  // churn window even on a fast host.
  CompiledApp bg = compile(apps::figure1_app({32, 24}, 400.0, 120, 16));
  Graph bg_graph = bg.graph.clone();
  RuntimeOptions bg_opt;
  bg_opt.pace_inputs = true;
  GraphProgram background(bg_graph, pool(bg.mapping), bg_opt, machine);
  background.start();

  constexpr int kRoundsPerThread = 6;
  std::atomic<int> completed{0};
  std::atomic<long> churn_firings{0};
  auto churn = [&](std::uint64_t salt) {
    for (int round = 0; round < kRoundsPerThread; ++round) {
      // Vary the shape per thread so the two churners exercise
      // different kernel sets and core assignments.
      CompiledApp a = salt & 1
                          ? compile(apps::histogram_app({16, 12}, 300.0, 2, 8))
                          : compile(apps::sobel_app({20, 16}, 250.0, 2, 96.0));
      Graph g = a.graph.clone();
      GraphProgram p(g, pool(a.mapping), RuntimeOptions{}, machine);
      p.start();
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(60);
      while (!p.done() && std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const RuntimeResult r = p.finish();
      if (r.completed) completed.fetch_add(1, std::memory_order_relaxed);
      churn_firings.fetch_add(r.total_firings, std::memory_order_relaxed);
    }
  };
  std::thread t0(churn, 0);
  std::thread t1(churn, 1);
  t0.join();
  t1.join();
  EXPECT_EQ(completed.load(), 2 * kRoundsPerThread);
  EXPECT_GT(churn_firings.load(), 0);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!background.done() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const RuntimeResult r = background.finish();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.total_firings, 0);
}

// Exception-containment stress for the guarded worker loop: a firing
// that throws must fail only its own program while co-resident programs
// and the pool itself stay healthy — repeatedly, with the failure racing
// live traffic from a clean program on the same workers. Runs in the
// TSan CI job, where the fail()/quiesce/detach path is checked against
// concurrent attach and firing traffic.
TEST(Machine, ThrowingProgramChurnLeavesPoolAndCoProgramHealthy) {
  rt::Machine machine(3);
  auto pool = [&](const Mapping& m) {
    Mapping out;
    out.cores = machine.cores();
    out.core_of.resize(m.core_of.size());
    for (size_t i = 0; i < m.core_of.size(); ++i)
      out.core_of[i] = m.core_of[i] % out.cores;
    return out;
  };

  fault::FaultPlan plan;
  plan.seed = 11;
  fault::KernelRule kr;
  kr.match = "merge*";
  kr.throw_prob = 1.0;
  plan.kernels.push_back(kr);

  CompiledApp faulty = compile(apps::figure1_app({24, 18}, 300.0, 2, 8));
  CompiledApp clean = compile(apps::histogram_app({16, 12}, 300.0, 2, 8));

  constexpr int kRounds = 8;
  for (int round = 0; round < kRounds; ++round) {
    const fault::Injector inj(plan, static_cast<std::uint64_t>(round));
    Graph gf = faulty.graph.clone();
    RuntimeOptions fopt;
    fopt.injector = &inj;
    GraphProgram pf(gf, pool(faulty.mapping), fopt, machine);
    Graph gc = clean.graph.clone();
    GraphProgram pc(gc, pool(clean.mapping), RuntimeOptions{}, machine);
    pf.start();
    pc.start();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while ((!pf.failed() || !pc.done()) &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(pf.failed()) << "round " << round;
    const RuntimeResult rf = pf.finish();
    EXPECT_TRUE(rf.failed);
    EXPECT_NE(rf.error.find("injected fault"), std::string::npos) << rf.error;
    ASSERT_TRUE(pc.done()) << "round " << round;
    EXPECT_TRUE(pc.finish().completed);
  }
}

}  // namespace
}  // namespace bpp
