// Flagship example: a video-analytics front end composing most of the
// library — temporal IIR denoising (feedback), separable 5x5 blur,
// Sobel/threshold/dilate edge extraction, and a per-frame histogram with
// the Fig. 1(b)-style serial merge — compiled for the real-time rate and
// executed on host threads.

#include <cstdio>
#include <iostream>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "example_util.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

using namespace bpp;

int main() {
  examples::banner("video analytics: denoise + blur + edges + statistics");

  const Size2 frame{96, 72};
  const double rate = 150.0;
  const int frames = 3;

  CompiledApp app = compile(apps::analytics_app(frame, rate, frames));
  write_report(app, std::cout);

  Graph simulated = app.graph.clone();
  SimOptions sopt;
  sopt.machine = app.options.machine;
  const SimResult sr = simulate(simulated, app.mapping, sopt);
  std::printf("real-time at %.0f Hz on %d cores: %s (first edge map after "
              "%.2f ms, then every %.2f ms)\n",
              rate, app.mapping.cores, sr.realtime_met ? "MET" : "VIOLATED",
              sr.first_frame_latency() * 1e3, sr.steady_frame_period() * 1e3);

  const RuntimeResult rr = run_threaded(app.graph, app.mapping);
  std::printf("runtime completed=%s in %.1f ms\n", rr.completed ? "yes" : "no",
              rr.wall_seconds * 1e3);

  const auto& edges = dynamic_cast<const OutputKernel&>(app.graph.by_name("edges"));
  const auto& stats = dynamic_cast<const OutputKernel&>(app.graph.by_name("stats"));
  for (size_t f = 0; f < edges.frames().size(); ++f) {
    const Tile& e = edges.frames()[f];
    long on = 0;
    for (int y = 0; y < e.height(); ++y)
      for (int x = 0; x < e.width(); ++x) on += e.at(x, y) > 0.5;
    std::printf("frame %zu: %ld edge pixels;", f, on);
    std::printf(" histogram:");
    for (int i = 0; i < 16; ++i)
      std::printf(" %ld", static_cast<long>(stats.tiles()[f].at(i, 0)));
    std::printf("\n");
  }

  if (!edges.frames().empty()) {
    Tile vis(edges.frames().back().size());
    for (int y = 0; y < vis.height(); ++y)
      for (int x = 0; x < vis.width(); ++x)
        vis.at(x, y) = 255.0 * edges.frames().back().at(x, y);
    if (examples::write_pgm(vis, "video_analytics_edges.pgm"))
      std::printf("wrote video_analytics_edges.pgm\n");
  }
  return 0;
}
