// The paper's running example (Fig. 1(b)): a real-time non-linear image
// analysis task. A stream of frames is filtered by a 3x3 median and a 5x5
// convolution, the per-pixel difference is taken (after the compiler's
// automatic trim alignment), and a histogram with an explicitly serial
// merge summarizes each frame.
//
// Writes the input frame and the |median - blur| difference image as PGM
// files and prints the per-frame histogram.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "core/dot_export.h"
#include "example_util.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

using namespace bpp;

int main() {
  examples::banner("image pipeline: the Fig. 1(b) application");

  const Size2 frame{96, 72};
  const double rate = 130.0;
  const int frames = 2, bins = 32;

  CompiledApp app = compile(apps::figure1_app(frame, rate, frames, bins));
  write_report(app, std::cout);

  // Real-time check on the timing simulator.
  Graph simulated = app.graph.clone();
  SimOptions sopt;
  sopt.machine = app.options.machine;
  const SimResult sr = simulate(simulated, app.mapping, sopt);
  std::printf("real-time at %.0f Hz on %d cores: %s\n", rate,
              app.mapping.cores, sr.realtime_met ? "MET" : "VIOLATED");

  // Functional run on host threads.
  const RuntimeResult rr = run_threaded(app.graph, app.mapping);
  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  std::printf("runtime completed=%s in %.1f ms\n", rr.completed ? "yes" : "no",
              rr.wall_seconds * 1e3);

  for (size_t f = 0; f < out.tiles().size(); ++f) {
    std::printf("frame %zu histogram:", f);
    for (int i = 0; i < bins; ++i)
      std::printf(" %ld", static_cast<long>(out.tiles()[f].at(i, 0)));
    std::printf("\n");
  }

  // Side products for the curious: the input and the difference image the
  // histogram summarizes, via the scalar reference path.
  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const Tile med = ref::crop(ref::median(img, 3, 3), {1, 1, 1, 1});
  const Tile diff = ref::subtract(med, ref::convolve(img, apps::blur_coeff5x5()));
  Tile vis(diff.size());
  for (int y = 0; y < diff.height(); ++y)
    for (int x = 0; x < diff.width(); ++x)
      vis.at(x, y) = 128.0 + 4.0 * diff.at(x, y);
  if (examples::write_pgm(img, "image_pipeline_input.pgm") &&
      examples::write_pgm(vis, "image_pipeline_diff.pgm"))
    std::printf("wrote image_pipeline_input.pgm and image_pipeline_diff.pgm\n");

  // And the compiled application graph for graphviz.
  std::ofstream dot("image_pipeline_graph.dot");
  write_dot(app.graph, dot);
  std::printf("wrote image_pipeline_graph.dot (render with: dot -Tpng ...)\n");
  return 0;
}
