// Writing your own kernel: the C++ analogue of the paper's Fig. 6/7 Java
// kernels. A gamma-correction kernel with two methods — one triggered by
// pixel data, one by a replicated parameter input — sharing private state,
// plus a per-row statistics kernel showing end-of-line token handling.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "example_util.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"

using namespace bpp;

namespace {

/// Gamma correction with a runtime-reloadable exponent (cf. the paper's
/// convolution kernel, whose coefficients load over a replicated input).
class GammaKernel final : public Kernel {
 public:
  explicit GammaKernel(std::string name) : Kernel(std::move(name)) {}

  void configure() override {
    create_input("gamma", {1, 1}, {1, 1});
    set_replicated("gamma");  // copied, not split, under parallelization
    auto& load = register_method("loadGamma", Resources{8, 2},
                                 &GammaKernel::load_gamma);
    method_input(load, "gamma");

    create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
    create_output("out", {1, 1});
    auto& run = register_method("applyGamma", Resources{40, 4},
                                &GammaKernel::apply);
    method_input(run, "in");
    method_output(run, "out");
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<GammaKernel>(*this);
  }
  void init() override { gamma_ = 1.0; }

 private:
  void load_gamma() { gamma_ = read_input("gamma").at(0, 0); }
  void apply() {
    Tile out(1, 1);
    out.at(0, 0) = 255.0 * std::pow(read_input("in").at(0, 0) / 255.0, gamma_);
    write_output("out", std::move(out));
  }

  double gamma_ = 1.0;  // shared between the two methods (§II-B)
};

/// Per-row mean: data accumulates, the end-of-line token emits (§II-C).
class RowMeanKernel final : public Kernel {
 public:
  explicit RowMeanKernel(std::string name) : Kernel(std::move(name)) {}

  void configure() override {
    create_input("in", {1, 1}, {1, 1}, {0.0, 0.0});
    create_output("mean", {1, 1});
    auto& acc = register_method("accumulate", Resources{6, 4},
                                &RowMeanKernel::accumulate);
    method_input(acc, "in");
    auto& fin = register_method("finishRow", Resources{10, 4},
                                &RowMeanKernel::finish_row);
    method_input(fin, "in", tok::kEndOfLine);
    method_output(fin, "mean");
    auto& eos = register_method("eos", Resources{2, 0}, &RowMeanKernel::on_eos);
    method_input(eos, "in", tok::kEndOfStream);
    method_output(eos, "mean");
  }
  [[nodiscard]] std::unique_ptr<Kernel> clone() const override {
    return std::make_unique<RowMeanKernel>(*this);
  }
  void init() override {
    sum_ = 0.0;
    n_ = 0;
  }
  [[nodiscard]] ParKind parallel_kind() const override { return ParKind::Serial; }

 private:
  void accumulate() {
    sum_ += read_input("in").at(0, 0);
    ++n_;
  }
  void finish_row() {
    Tile out(1, 1);
    out.at(0, 0) = n_ > 0 ? sum_ / n_ : 0.0;
    write_output("mean", std::move(out));
    sum_ = 0.0;
    n_ = 0;
  }
  void on_eos() { emit_token("mean", tok::kEndOfStream, trigger_payload()); }

  double sum_ = 0.0;
  long n_ = 0;
};

}  // namespace

int main() {
  examples::banner("custom kernels: gamma correction + per-row statistics");

  const Size2 frame{32, 8};
  Graph g;
  auto& input = g.add<InputKernel>("input", frame, 200.0, 1);
  auto& gamma = g.add<GammaKernel>("gamma");
  auto& gsrc = g.add<ConstSource>("gammaValue", Tile(Size2{1, 1}, 0.5));
  auto& rows = g.add<RowMeanKernel>("rowMean");
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", gamma, "in");
  g.connect(gsrc, "out", gamma, "gamma");
  g.connect(gamma, "out", rows, "in");
  g.connect(rows, "mean", out, "in");

  CompiledApp app = compile(std::move(g));
  write_report(app, std::cout);

  const RuntimeResult rr = run_threaded(app.graph, app.mapping);
  const auto& result = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  std::printf("runtime completed=%s\n", rr.completed ? "yes" : "no");
  std::printf("per-row means after gamma 0.5:\n ");
  for (const Tile& t : result.tiles()) std::printf(" %.1f", t.at(0, 0));
  std::printf("\n");
  return 0;
}
