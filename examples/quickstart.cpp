// Quickstart: build a tiny block-parallel application, let the compiler
// buffer/align/parallelize it for the real-time input rate, and execute
// it on the simulator and the threaded host runtime.
//
//   input (64x48 @ 300 Hz) --> 3x3 blur convolution --> threshold --> out
//
// Everything between "build the graph" and "read the results" — buffering
// the scan-line input into 3x3 windows, replicating the convolution to
// meet 300 Hz, round-robin split/join, core mapping — is automatic.

#include <cstdio>
#include <iostream>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "example_util.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

using namespace bpp;

int main() {
  examples::banner("quickstart: blur + threshold at a fixed input rate");

  // 1. Describe the application: kernels and stream channels (paper §II).
  Graph g;
  auto& input = g.add<InputKernel>("camera", Size2{64, 48}, /*rate=*/300.0,
                                   /*frames=*/2);
  auto& blur = g.add<ConvolutionKernel>("blur3x3", 3, 3);
  auto& coeff = g.add<ConstSource>("blurCoeff", apps::blur_coeff3x3());
  Kernel& edge = g.add_kernel(make_threshold("threshold", 100.0));
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", blur, "in");
  g.connect(coeff, "out", blur, "coeff");
  g.connect(blur, "out", edge, "in");
  g.connect(edge, "out", out, "in");

  // 2. Compile: analyses + buffering + parallelization + mapping (§III-§V).
  CompiledApp app = compile(std::move(g));
  write_report(app, std::cout);

  // 3. Verify the hard real-time constraint on the timing simulator.
  Graph simulated = app.graph.clone();
  SimOptions sopt;
  sopt.machine = app.options.machine;
  const SimResult sr = simulate(simulated, app.mapping, sopt);
  std::printf("simulator: completed=%s, real-time %s (max input lag %.2f us)\n",
              sr.completed ? "yes" : "no", sr.realtime_met ? "MET" : "VIOLATED",
              sr.max_input_lag_seconds * 1e6);

  // 4. Execute functionally on host threads and look at the output.
  const RuntimeResult rr = run_threaded(app.graph, app.mapping);
  const auto& result = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  std::printf("runtime: completed=%s, %zu frames of %dx%d in %.1f ms\n",
              rr.completed ? "yes" : "no", result.frames().size(),
              result.frames().empty() ? 0 : result.frames()[0].width(),
              result.frames().empty() ? 0 : result.frames()[0].height(),
              rr.wall_seconds * 1e3);
  if (!result.frames().empty()) {
    long above = 0;
    const Tile& f0 = result.frames()[0];
    for (int y = 0; y < f0.height(); ++y)
      for (int x = 0; x < f0.width(); ++x) above += f0.at(x, y) > 0.5;
    std::printf("frame 0: %ld of %ld pixels above threshold\n", above,
                f0.words());
  }
  return 0;
}
