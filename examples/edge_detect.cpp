// Edge detection: Sobel gradient magnitude followed by a threshold, with
// the edge map written as a PGM image. Shows a windowed kernel the library
// provides plus a user-defined element-wise stage.

#include <cstdio>
#include <iostream>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "example_util.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"

using namespace bpp;

int main() {
  examples::banner("edge detect: sobel magnitude + threshold");

  const Size2 frame{128, 96};
  const double level = 120.0;
  CompiledApp app = compile(apps::sobel_app(frame, 60.0, 1, level));
  write_report(app, std::cout);

  const RuntimeResult rr = run_threaded(app.graph, app.mapping);
  const auto& out = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  std::printf("runtime completed=%s, %zu frame(s)\n", rr.completed ? "yes" : "no",
              out.frames().size());
  if (!out.frames().empty()) {
    const Tile& edges = out.frames()[0];
    long on = 0;
    for (int y = 0; y < edges.height(); ++y)
      for (int x = 0; x < edges.width(); ++x) on += edges.at(x, y) > 0.5;
    std::printf("%ld edge pixels of %ld (threshold %.0f)\n", on, edges.words(),
                level);
    Tile vis(edges.size());
    for (int y = 0; y < edges.height(); ++y)
      for (int x = 0; x < edges.width(); ++x) vis.at(x, y) = 255.0 * edges.at(x, y);
    if (examples::write_pgm(vis, "edge_detect.pgm"))
      std::printf("wrote edge_detect.pgm\n");
  }
  return 0;
}
