// Dynamic-resource extension (the paper's conclusions): block motion
// estimation whose per-block work depends on the data. The kernel reports
// its actual cycles each firing; the declared cycles are the allocated
// real-time budget, and the simulator raises runtime resource exceptions
// when a firing exceeds it.

#include <cmath>
#include <cstdio>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "example_util.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

using namespace bpp;

namespace {

/// A scene whose texture drifts one pixel per frame: blocks mostly find
/// their match quickly, but some wander.
PixelFn drifting_scene() {
  return [](int f, int x, int y) {
    const double u = x - f;  // uniform one-pixel-per-frame drift
    return 128.0 + 90.0 * std::sin(u * 0.41) * std::cos(y * 0.37);
  };
}

}  // namespace

int main() {
  examples::banner("motion tracking: variable work under a cycle budget");

  const Size2 frame{32, 32};
  const int frames = 4;

  for (long bound : {0L, 200L}) {  // 0 = worst-case budget, 200 = tight
    Graph h;
    auto& in = h.add<InputKernel>("input", frame, 60.0, frames, drifting_scene());
    auto& blocks = h.add<BufferKernel>("blocks", Size2{1, 1}, Size2{4, 4},
                                       Step2{4, 4}, frame);
    auto& motion = h.add<MotionEstimateKernel>("motion", frame, 2, bound);
    auto& out = h.add<OutputKernel>("result");
    h.connect(in, "out", blocks, "in");
    h.connect(blocks, "out", motion, "in");
    h.connect(motion, "out", out, "in");

    const SimResult r = simulate(h, map_one_to_one(h), SimOptions{});
    std::printf("\nbudget %s: completed=%s, %ld resource exception(s)\n",
                bound == 0 ? "worst-case" : "tight (200 cycles)",
                r.completed ? "yes" : "no", r.resource_exception_count);
    for (size_t i = 0; i < std::min<size_t>(3, r.resource_exceptions.size()); ++i) {
      const ResourceException& e = r.resource_exceptions[i];
      std::printf("  exception: %s.%s used %ld of %ld cycles at t=%.2f ms\n",
                  e.kernel.c_str(), e.method.c_str(), e.used_cycles,
                  e.bound_cycles, e.at_seconds * 1e3);
    }
    const auto& res = dynamic_cast<const OutputKernel&>(h.by_name("result"));
    double moving = 0;
    long blocks_n = 0;
    for (const Tile& t : res.tiles()) {
      moving += t.at(0, 0) > 0.5;
      ++blocks_n;
    }
    std::printf("  %ld block vectors, %.0f%% moving (scene drifts 1 px/frame)\n",
                blocks_n, 100.0 * moving / blocks_n);
  }
  return 0;
}
