#pragma once
// Small helpers shared by the example programs.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/tile.h"

namespace bpp::examples {

/// Write a tile as a binary PGM image (values clamped to [0, 255]).
inline bool write_pgm(const Tile& t, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return false;
  f << "P5\n" << t.width() << ' ' << t.height() << "\n255\n";
  for (int y = 0; y < t.height(); ++y)
    for (int x = 0; x < t.width(); ++x) {
      const double v = std::clamp(t.at(x, y), 0.0, 255.0);
      f.put(static_cast<char>(static_cast<unsigned char>(v)));
    }
  return static_cast<bool>(f);
}

inline void banner(const char* title) {
  std::printf("== %s ==\n", title);
}

}  // namespace bpp::examples
