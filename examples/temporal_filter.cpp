// Feedback example (paper §III-D extension): a per-pixel temporal IIR
// filter y_t = alpha x_t + (1-alpha) y_{t-1}. The feedback loop is broken
// by an initialization kernel that primes one frame of initial values and
// then passes the loop data through. Demonstrates that the noise of a
// static-plus-noise input stream shrinks frame over frame.

#include <cmath>
#include <cstdio>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "example_util.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"

using namespace bpp;

namespace {

/// Static scene + per-frame noise.
PixelFn noisy_scene() {
  const PixelFn noise = default_pixel_fn();
  return [noise](int f, int x, int y) {
    const double scene = 96.0 + 64.0 * std::sin(x * 0.3) * std::cos(y * 0.2);
    return scene + 0.25 * (noise(f, x, y) - 128.0);
  };
}

double noise_rms(const Tile& got, Size2 frame) {
  double sum = 0.0;
  for (int y = 0; y < frame.h; ++y)
    for (int x = 0; x < frame.w; ++x) {
      const double scene = 96.0 + 64.0 * std::sin(x * 0.3) * std::cos(y * 0.2);
      const double e = got.at(x, y) - scene;
      sum += e * e;
    }
  return std::sqrt(sum / frame.area());
}

}  // namespace

int main() {
  examples::banner("temporal filter: feedback IIR denoising");

  const Size2 frame{48, 36};
  const int frames = 8;
  const double alpha = 0.3;

  Graph g;
  auto& input = g.add<InputKernel>("input", frame, 60.0, frames, noisy_scene());
  auto& mix = g.add<TemporalMixKernel>("mix", alpha);
  auto& init = g.add<InitialValueKernel>("loopInit", frame, 60.0, 96.0);
  auto& out = g.add<OutputKernel>("result");
  g.connect(input, "out", mix, "x");
  g.connect(init, "out", mix, "prev");
  g.connect(mix, "out", init, "in");
  g.connect(mix, "out", out, "in");

  CompileOptions opt;
  CompiledApp app = compile(std::move(g), opt);
  const RuntimeResult rr = run_threaded(app.graph, app.mapping);
  const auto& result = dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
  std::printf("runtime completed=%s, %zu frames\n", rr.completed ? "yes" : "no",
              result.frames().size());

  std::printf("\nper-frame RMS error vs the static scene (alpha=%.2f):\n", alpha);
  for (size_t f = 0; f < result.frames().size(); ++f)
    std::printf("  frame %zu: %.3f\n", f, noise_rms(result.frames()[f], frame));
  std::printf("the IIR feedback loop integrates the scene: the error drops\n"
              "toward the alpha-limited floor across frames.\n");
  return 0;
}
