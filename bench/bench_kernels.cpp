// Per-kernel-primitive microbenchmarks across every ISA this machine
// supports (Google Benchmark). Each primitive is registered once per ISA
// with the table resolved up front, so a run directly compares e.g.
// conv2d_3x3/scalar vs conv2d_3x3/avx2 on identical inputs.
//
//   bench/bench_kernels --benchmark_format=json > BENCH_kernels.json
//
// The CI bench job uploads that file; EXPERIMENTS.md tabulates the
// speedups. Frame geometry (256x256) keeps the working set L2-resident so
// the numbers measure arithmetic, not memory bandwidth.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/tile.h"
#include "kernels/simd/simd.h"

namespace {

using bpp::Tile;
using bpp::simd::Isa;
using bpp::simd::Ops;

constexpr int kFrame = 256;
constexpr int kTaps = 32;
constexpr int kBins = 32;

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Tile random_frame(int w, int h, std::uint64_t seed) {
  Tile t(w, h);
  for (int y = 0; y < h; ++y) {
    double* row = t.row_ptr(y);
    for (int x = 0; x < w; ++x)
      row[x] = static_cast<double>(splitmix(seed) % 256);
  }
  return t;
}

std::vector<double> random_vec(int n, std::uint64_t seed) {
  std::vector<double> v(static_cast<size_t>(n));
  for (double& x : v) x = static_cast<double>(splitmix(seed) % 256) / 16.0;
  return v;
}

void bench_conv2d(benchmark::State& state, const Ops* ops, int k) {
  const Tile in = random_frame(kFrame + k - 1, kFrame + k - 1, 1);
  const std::vector<double> kflip = random_vec(k * k, 2);
  Tile out(kFrame, kFrame);
  for (auto _ : state) {
    ops->conv2d(in.data(), in.stride(), kflip.data(), k, k, out.data(),
                out.stride(), kFrame, kFrame);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kFrame * kFrame);
}

void bench_fir_dot(benchmark::State& state, const Ops* ops) {
  // The FIR kernel is one dot per output sample; sweep a 1-D signal the
  // way the decimating kernel does.
  const std::vector<double> signal = random_vec(kFrame * kFrame / 16, 3);
  const std::vector<double> taps = random_vec(kTaps, 4);
  const int n = static_cast<int>(signal.size()) - kTaps;
  double sink = 0.0;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i)
      sink += ops->dot(signal.data() + i, taps.data(), kTaps);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void bench_elementwise(benchmark::State& state, const Ops* ops) {
  const Tile a = random_frame(kFrame, kFrame, 5);
  const Tile b = random_frame(kFrame, kFrame, 6);
  Tile out(kFrame, kFrame);
  const int n = kFrame * kFrame;
  for (auto _ : state) {
    ops->sub(a.data(), b.data(), out.data(), n);
    ops->scale(out.data(), out.data(), n, 0.5, 8.0);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}

void bench_sobel(benchmark::State& state, const Ops* ops) {
  const Tile in = random_frame(kFrame + 2, kFrame + 2, 7);
  Tile out(kFrame, kFrame);
  for (auto _ : state) {
    ops->sobel2d(in.data(), in.stride(), out.data(), out.stride(), kFrame,
                 kFrame);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kFrame * kFrame);
}

void bench_erode(benchmark::State& state, const Ops* ops, int k) {
  const Tile in = random_frame(kFrame + k - 1, kFrame + k - 1, 8);
  Tile out(kFrame, kFrame);
  for (auto _ : state) {
    ops->erode2d(in.data(), in.stride(), k, k, out.data(), out.stride(),
                 kFrame, kFrame);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kFrame * kFrame);
}

void bench_median3x3(benchmark::State& state, const Ops* ops) {
  const Tile in = random_frame(kFrame + 2, kFrame + 2, 9);
  Tile out(kFrame, kFrame);
  for (auto _ : state) {
    ops->median3x3_2d(in.data(), in.stride(), out.data(), out.stride(),
                      kFrame, kFrame);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kFrame * kFrame);
}

void bench_histogram(benchmark::State& state, const Ops* ops) {
  const Tile in = random_frame(kFrame, kFrame, 10);
  std::vector<double> uppers(kBins);
  for (int i = 0; i < kBins; ++i) uppers[static_cast<size_t>(i)] = 256.0 * (i + 1) / kBins;
  std::vector<long> counts(kBins, 0);
  for (auto _ : state) {
    ops->histogram2d(in.data(), in.stride(), in.width(), in.height(),
                     uppers.data(), kBins, counts.data());
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetItemsProcessed(state.iterations() * kFrame * kFrame);
}

// A/B the two bin-search strategies on identical uniform (sorted) bounds
// and uniformly distributed samples: the early-exit scan stops halfway on
// average but branch-mispredicts per sample; the sorted variant always
// touches every bound but is branch-free.
void bench_find_bin(benchmark::State& state, const Ops* ops, bool sorted) {
  const std::vector<double> samples = random_vec(kFrame * kFrame / 16, 11);
  std::vector<double> uppers(kBins);
  for (int i = 0; i < kBins; ++i)
    uppers[static_cast<size_t>(i)] = 16.0 * (i + 1) / kBins;
  auto* fn = sorted ? ops->find_bin_sorted : ops->find_bin;
  long sink = 0;
  for (auto _ : state) {
    for (double v : samples) sink += fn(v, uppers.data(), kBins);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(samples.size()));
}

void register_all() {
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2, Isa::kNeon}) {
    if (!bpp::simd::supported(isa)) continue;
    const Ops* ops = &bpp::simd::ops_for(isa);
    const std::string tag = std::string("/") + ops->name;
    benchmark::RegisterBenchmark(("conv2d_3x3" + tag).c_str(),
                                 [ops](benchmark::State& s) { bench_conv2d(s, ops, 3); });
    benchmark::RegisterBenchmark(("conv2d_5x5" + tag).c_str(),
                                 [ops](benchmark::State& s) { bench_conv2d(s, ops, 5); });
    benchmark::RegisterBenchmark(("fir_dot_32tap" + tag).c_str(),
                                 [ops](benchmark::State& s) { bench_fir_dot(s, ops); });
    benchmark::RegisterBenchmark(("elementwise_sub_scale" + tag).c_str(),
                                 [ops](benchmark::State& s) { bench_elementwise(s, ops); });
    benchmark::RegisterBenchmark(("sobel_3x3" + tag).c_str(),
                                 [ops](benchmark::State& s) { bench_sobel(s, ops); });
    benchmark::RegisterBenchmark(("erode_3x3" + tag).c_str(),
                                 [ops](benchmark::State& s) { bench_erode(s, ops, 3); });
    benchmark::RegisterBenchmark(("median_3x3" + tag).c_str(),
                                 [ops](benchmark::State& s) { bench_median3x3(s, ops); });
    benchmark::RegisterBenchmark(("histogram_32bin" + tag).c_str(),
                                 [ops](benchmark::State& s) { bench_histogram(s, ops); });
    benchmark::RegisterBenchmark(("find_bin_scan_32bin" + tag).c_str(),
                                 [ops](benchmark::State& s) { bench_find_bin(s, ops, false); });
    benchmark::RegisterBenchmark(("find_bin_sorted_32bin" + tag).c_str(),
                                 [ops](benchmark::State& s) { bench_find_bin(s, ops, true); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
