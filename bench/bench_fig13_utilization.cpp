// Figure 13: processor utilization for the benchmark suite under 1:1 and
// greedy mappings, broken down into run / read / write time. The paper's
// benchmarks: 1/1F Bayer demosaicing, 2/2F image histogram, 3 parallel
// buffer test, 4 multiple convolutions, SS/SF/BS/BF the Fig. 11 example,
// 5 the Fig. 1(b) application. Average improvement reported: 1.5x.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernels/kernels.h"

using namespace bpp;

namespace {

struct Program {
  std::string name;
  Graph graph;
};

std::vector<Program> programs() {
  std::vector<Program> out;
  const int frames = 2;
  out.push_back({"1  (bayer)", apps::bayer_app({64, 48}, 150.0, frames)});
  out.push_back({"1F (bayer fast)", apps::bayer_app({64, 48}, 450.0, frames)});
  out.push_back({"2  (histogram)", apps::histogram_app({64, 48}, 150.0, frames)});
  out.push_back(
      {"2F (histogram fast)", apps::histogram_app({64, 48}, 450.0, frames)});
  out.push_back(
      {"3  (parallel buffer)", apps::parallel_buffer_app({64, 24}, 90.0, frames)});
  out.push_back(
      {"4  (multi conv)", apps::multi_convolution_app({48, 36}, 150.0, frames)});
  for (const auto& cfg : apps::fig11_configs())
    out.push_back({std::string(cfg.tag) + " (fig.11 " + cfg.tag + ")",
                   apps::figure1_app(cfg.frame, cfg.rate_hz, frames, 64)});
  out.push_back({"5  (fig.1b)", apps::figure1_app({64, 48}, 150.0, frames, 64)});
  return out;
}

}  // namespace

int main() {
  bench::print_header("Figure 13",
                      "core utilization, 1:1 vs greedy mapping, run/read/write");

  std::printf("\n%-22s %7s | %6s %6s %6s %6s | %6s %6s %6s %6s | %5s\n",
              "benchmark", "kernels", "1:1", "run", "read", "write", "GM",
              "run", "read", "write", "gain");

  double gain_sum = 0.0;
  int gain_n = 0;
  for (Program& p : programs()) {
    CompiledApp app = compile(std::move(p.graph));
    const SimResult r1 = bench::simulate_mapping(app, app.one_to_one);
    const SimResult rg = bench::simulate_mapping(app, app.mapping);
    const auto b1 = bench::breakdown(r1, app.options.machine);
    const auto bg = bench::breakdown(rg, app.options.machine);
    const double gain = b1.total() > 0 ? bg.total() / b1.total() : 0.0;
    gain_sum += gain;
    ++gain_n;
    std::printf("%-22s %7d | %5.1f%% %5.1f%% %5.1f%% %5.1f%% |"
                " %5.1f%% %5.1f%% %5.1f%% %5.1f%% | %4.2fx\n",
                p.name.c_str(), app.graph.kernel_count(), 100 * b1.total(),
                100 * b1.run, 100 * b1.read, 100 * b1.write, 100 * bg.total(),
                100 * bg.run, 100 * bg.read, 100 * bg.write, gain);
    if (!r1.completed || !rg.completed)
      std::printf("  WARNING: %s did not complete cleanly\n", p.name.c_str());
  }
  std::printf("%-22s %7s | %27s | %27s | %4.2fx\n", "Avg.", "", "", "",
              gain_sum / gain_n);
  std::printf("\npaper: \"Average utilization improvement is 1.5x for the "
              "greedy mapping over the 1:1 mapping.\"\n");
  return 0;
}
