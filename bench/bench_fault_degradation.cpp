// Degradation under injected overload: sweep fault severity on the
// edge-detect pipeline and read the degradation layer at each point.
//
// Part 1 (simulator): escalate per-kernel overrun probability and watch
// the deadline monitor flip from all-on-time to all-late, with the
// critical-path walk attributing the overrun to the faulted kernel.
//
// Part 2 (host runtime, paced): tighten the controller's deadline until
// the source starts shedding, and check the central trade the layer
// makes — shed whole frames early so the survivors stop being late.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "fault/degradation.h"
#include "fault/injector.h"
#include "fault/plan.h"
#include "obs/critical_path.h"
#include "obs/deadline.h"
#include "obs/frames.h"
#include "obs/recorder.h"
#include "runtime/runtime.h"

using namespace bpp;

namespace {

fault::FaultPlan overrun_plan(double prob) {
  fault::FaultPlan p;
  p.seed = 7;
  fault::KernelRule kr;
  kr.match = "sobel*";
  kr.overrun_prob = prob;
  kr.overrun_factor = 6.0;
  p.kernels.push_back(kr);
  return p;
}

}  // namespace

int main() {
  bench::print_header("Fault degradation",
                      "edge-detect misses/shedding vs injected overload");

  if (!obs::kCompiledIn) {
    std::printf("observability compiled out (-DBPP_OBS=OFF); nothing to "
                "measure\n");
    return 0;
  }

  const Size2 frame{48, 36};
  const int frames = 6;
  const double rate = 180.0;

  std::printf("\nsimulator, overrun faults on 'sobel' (factor 6.0):\n");
  std::printf("%-8s %7s %9s %11s  %s\n", "prob", "faults", "missed",
              "max late", "attributed bottleneck");
  for (const double prob : {0.0, 0.1, 0.25, 0.5, 1.0}) {
    CompiledApp app = compile(apps::sobel_app(frame, rate, frames, 100.0));
    const fault::FaultPlan plan = overrun_plan(prob);
    fault::Injector inj(plan, plan.seed);
    Graph g = app.graph.clone();
    obs::Recorder rec;
    SimOptions opt;
    opt.machine = app.options.machine;
    opt.recorder = &rec;
    opt.injector = &inj;
    const SimResult r = simulate(g, app.mapping, opt);
    if (!r.completed) {
      std::printf("%-8.2f did not complete: %s\n", prob, r.diagnostics.c_str());
      continue;
    }
    const obs::FrameReport fr = obs::analyze_frames(rec.trace());
    obs::DeadlineMonitor mon({rate, 0.0});
    mon.observe(fr);
    const obs::CriticalPathReport cp =
        obs::analyze_critical_path(rec.trace(), fr, app.graph);
    const fault::DegradationReport deg = fault::build_degradation_report(
        mon.verdicts(), {}, rate, 0.0, &cp, &rec.trace());
    std::printf("%-8.2f %7ld %5ld/%-3ld %9.3fms  %s\n", prob,
                r.faults_injected, deg.frames_late,
                deg.frames_late + deg.frames_on_time,
                deg.max_lateness_seconds * 1e3, deg.bottleneck.c_str());
  }

  std::printf("\nhost runtime, paced @ %.0f Hz, shedding controller:\n", rate);
  std::printf("%-12s %8s %6s %6s %9s\n", "deadline", "on-time", "late",
              "shed", "max late");
  for (const double tighten : {1.0, 2.0, 8.0, 64.0, 4096.0}) {
    CompiledApp app = compile(apps::sobel_app(frame, rate, frames, 100.0));
    fault::DegradationPolicy pol;
    pol.shed = true;
    pol.rate_hz = rate * tighten;
    pol.max_pending_sheds = 1;
    pol.cooldown_frames = 1;
    fault::DegradationController ctrl(pol);
    RuntimeOptions ropt;
    ropt.pace_inputs = true;
    ropt.degradation = &ctrl;
    const RuntimeResult r = run_threaded(app.graph, app.mapping, ropt);
    if (!r.completed) {
      std::printf("%-12.0f did not complete: %s\n", pol.rate_hz,
                  r.diagnostics.c_str());
      continue;
    }
    const fault::DegradationReport deg = fault::build_degradation_report(ctrl);
    std::printf("%9.0fHz %8ld %6ld %6ld %7.3fms\n", pol.rate_hz,
                deg.frames_on_time, deg.frames_late, deg.frames_shed,
                deg.max_lateness_seconds * 1e3);
  }
  return 0;
}
