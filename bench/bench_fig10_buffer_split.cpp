// Figure 10 + §IV-C: column-wise buffer splitting with shared-halo
// replication, including the split FSM's per-line ranges.

#include <cstdio>

#include "bench_util.h"
#include "compiler/buffer_split.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"

using namespace bpp;

namespace {

void split_case(Size2 frame, Size2 win, int slices, double rate) {
  Graph g;
  auto& in = g.add<InputKernel>("input", frame, rate, 2);
  auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, win, Step2{1, 1}, frame);
  auto& sink = g.add<OutputKernel>("sink", win);
  g.connect(in, "out", buf, "in");
  g.connect(buf, "out", sink, "in");
  DataflowResult df = analyze(g);
  LoadMap loads(g, df);
  const BufferSplitResult res = split_buffer(g, df, loads, g.find("buf"), slices);

  std::printf("\n%dx%d stream, %dx%d window -> %d slices (overlap %d col)\n",
              frame.w, frame.h, win.w, win.h, res.slices, res.overlap_columns);
  std::printf("  split FSM per %d-sample line:\n", frame.w);
  for (int i = 0; i < res.slices; ++i) {
    const auto& [a, b] = res.input_ranges[static_cast<size_t>(i)];
    std::printf("    cols [%2d,%2d) -> buffer %d %s", a, b, i,
                res.slice_annotations[static_cast<size_t>(i)].c_str());
    if (i + 1 < res.slices) {
      const int next_a = res.input_ranges[static_cast<size_t>(i) + 1].first;
      if (next_a < b)
        std::printf("  (cols [%d,%d) also to buffer %d)", next_a, b, i + 1);
    }
    std::printf("\n");
  }

  // Functional + timing verification of the split assembly.
  const RuntimeResult rr = run_sequential(g);
  const Size2 it = iteration_count(frame, win, {1, 1});
  const auto& out = dynamic_cast<const OutputKernel&>(g.by_name("sink"));
  std::printf("  verification: run completed=%d, %zu windows (expected %ld)\n",
              rr.completed, out.tiles().size(), 2L * it.area());
}

}  // namespace

int main() {
  bench::print_header("Figure 10", "buffer column split with halo replication");
  std::printf("\npaper example: 12-sample lines, 2 samples per line sent to"
              " both buffers\n");
  split_case({12, 8}, {3, 3}, 2, 50.0);
  split_case({49, 12}, {3, 3}, 2, 50.0);   // Fig. 4's [26x6]/[25x6] pair
  split_case({96, 16}, {5, 5}, 2, 50.0);
  split_case({96, 16}, {5, 5}, 4, 50.0);
  split_case({60, 10}, {7, 7}, 3, 50.0);
  return 0;
}
