// Figure 5(b) + §III-A: window parameterization determines data access and
// reuse. Reproduces the paper's statements that a (5x5)[1,1] window reuses
// 24 of 25 elements in the steady state, and that a 100x100 input at 50 Hz
// into a 5x5 convolution yields a 96x96 iteration space at 50 Hz.

#include <cstdio>

#include "bench_util.h"
#include "compiler/dataflow.h"
#include "kernels/kernels.h"
#include "sim/simulator.h"

using namespace bpp;

namespace {

/// Steady-state fresh words per iteration for a window/step pair (the
/// column advance) and the resulting reuse fraction.
void reuse_table() {
  std::printf("\nsteady-state data reuse by parameterization\n");
  std::printf("%-12s %-8s %12s %12s %12s\n", "window", "step", "fresh(cols)",
              "fresh(2-D)", "max reuse");
  struct Row {
    Size2 win;
    Step2 step;
  };
  for (const Row& r : {Row{{3, 3}, {1, 1}}, Row{{5, 5}, {1, 1}},
                       Row{{7, 7}, {1, 1}}, Row{{5, 5}, {2, 2}},
                       Row{{4, 4}, {4, 4}}, Row{{9, 1}, {1, 1}}}) {
    const long total = r.win.area();
    // Column reuse only (what one row of buffering gives mid-row)...
    const long fresh_col = std::min<long>(total, r.win.h * r.step.x);
    // ...and full 2-D reuse "where the previous rows can be reused as
    // well" (paper Fig. 5(b)): step_x * step_y fresh samples.
    const long fresh_2d = std::min<long>(total, r.step.x * r.step.y);
    std::printf("%-12s %-8s %12ld %12ld %8ld/%ld\n", to_string(r.win).c_str(),
                to_string(r.step).c_str(), fresh_col, fresh_2d,
                total - fresh_2d, total);
  }
  std::printf("paper: \"a maximum data-reuse of 24 of 25 elements\" for\n"
              "(5x5)[1,1] -- row 2, last column.\n");
}

void iteration_example() {
  std::printf("\npaper's Section III-A example\n");
  Graph g;
  auto& in = g.add<InputKernel>("input", Size2{100, 100}, 50.0, 1);
  auto& conv = g.add<ConvolutionKernel>("conv5x5", 5, 5);
  auto& coeff = g.add<ConstSource>("coeff", apps::blur_coeff5x5());
  auto& out = g.add<OutputKernel>("out");
  g.connect(in, "out", conv, "in");
  g.connect(coeff, "out", conv, "coeff");
  g.connect(conv, "out", out, "in");
  const DataflowResult df = analyze(g);
  const KernelAnalysis& a = df.kernel[static_cast<size_t>(g.find("conv5x5"))];
  std::printf("input 100x100 @ 50 Hz -> conv iteration size %dx%d @ %.0f Hz"
              " (paper: 96x96 @ 50 Hz)\n",
              a.iterations.w, a.iterations.h, a.rate_hz);
  const StreamInfo& s =
      df.channel[static_cast<size_t>(*g.in_channel(g.find("out"), 0))];
  std::printf("conv output frame %dx%d, inset [%.0f,%.0f] from the input\n",
              s.frame.w, s.frame.h, s.inset.x, s.inset.y);
}

/// Measured transfer volume of a reuse-linked buffer vs a plain one: the
/// simulator charges only fresh columns on reuse links, so the aggregate
/// ratio approaches the 24/25 reuse of Fig. 5(b).
void measured_transfer() {
  std::printf("\nmeasured buffer->kernel transfer (one 40x40 frame, 5x5 window)\n");
  for (bool reuse : {false, true}) {
    Graph g;
    const Size2 frame{40, 40};
    auto& in = g.add<InputKernel>("input", frame, 50.0, 1);
    auto& buf = g.add<BufferKernel>("buf", Size2{1, 1}, Size2{5, 5},
                                    Step2{1, 1}, frame);
    buf.set_reuse_link(reuse);
    auto& sink = g.add<OutputKernel>("sink", Size2{5, 5});
    g.connect(in, "out", buf, "in");
    g.connect(buf, "out", sink, "in");
    SimOptions opt;
    const SimResult r = simulate(g, map_one_to_one(g), opt);
    const CoreStats t = r.totals();
    std::printf("  reuse link %-3s: write cycles %8.0f  read cycles %8.0f\n",
                reuse ? "on" : "off", t.write_cycles, t.read_cycles);
  }
  const Size2 it = iteration_count({40, 40}, {5, 5}, {1, 1});
  const double full = static_cast<double>(it.area()) * 25;
  const double fresh = 25.0 + (it.w - 1) * 5.0 +
                       (it.h - 1) * (5.0 + (it.w - 1) * 5.0);
  std::printf("  analytic fresh/full = %.0f/%.0f = %.3f (-> 1/25 in the "
              "limit, i.e. 24/25 reused)\n",
              fresh, full, fresh / full);
}

}  // namespace

int main() {
  bench::print_header("Figure 5", "input/output parameterization and data reuse");
  reuse_table();
  iteration_example();
  measured_transfer();
  return 0;
}
