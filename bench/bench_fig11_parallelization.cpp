// Figure 11: automatic buffering and parallelization of the Fig. 1(b)
// image-processing application for Small/Slow, Big/Slow, Small/Fast, and
// Big/Fast inputs, verified on the timing-accurate simulator.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "kernels/kernels.h"
#include "ref/reference.h"

using namespace bpp;

namespace {

bool matches_reference(const CompiledApp& app, Graph& ran, Size2 frame,
                       int frames, int bins) {
  const auto& out = dynamic_cast<const OutputKernel&>(ran.by_name("result"));
  std::vector<long> want(static_cast<size_t>(bins), 0);
  for (int f = 0; f < frames; ++f) {
    const Tile img = ref::make_frame(frame, f, default_pixel_fn());
    const auto h = ref::figure1_histogram(img, apps::blur_coeff5x5(),
                                          apps::diff_bins(bins));
    for (int i = 0; i < bins; ++i) want[static_cast<size_t>(i)] += h[static_cast<size_t>(i)];
  }
  std::vector<long> got(static_cast<size_t>(bins), 0);
  for (const Tile& t : out.tiles())
    for (int i = 0; i < bins; ++i)
      got[static_cast<size_t>(i)] += static_cast<long>(t.at(i, 0));
  (void)app;
  return got == want;
}

}  // namespace

int main() {
  bench::print_header("Figure 11",
                      "automatic parallelization across input sizes and rates");
  const int bins = 64;
  const int frames = 2;

  std::printf("\npaper claims: bigger inputs -> more (split) buffers; faster"
              " rates -> replicated computation kernels; all four variants"
              " meet real time.\n");

  for (const auto& cfg : apps::fig11_configs()) {
    CompiledApp app =
        compile(apps::figure1_app(cfg.frame, cfg.rate_hz, frames, bins));
    std::printf("\n---- %s: %dx%d @ %.0f Hz ----\n", cfg.tag, cfg.frame.w,
                cfg.frame.h, cfg.rate_hz);
    write_report(app, std::cout);
    std::cout.flush();
    Graph ran = app.graph.clone();
    SimOptions opt;
    opt.machine = app.options.machine;
    const SimResult r = simulate(ran, app.mapping, opt);
    std::printf("simulation: completed=%s real-time=%s (max input lag %.2f us,"
                " avg core util %.1f%%)\n",
                r.completed ? "yes" : "NO", r.realtime_met ? "MET" : "VIOLATED",
                r.max_input_lag_seconds * 1e6,
                100.0 * r.avg_utilization(opt.machine));
    std::printf("functional check vs scalar reference: %s\n",
                matches_reference(app, ran, cfg.frame, frames, bins)
                    ? "match"
                    : "MISMATCH");
  }
  return 0;
}
