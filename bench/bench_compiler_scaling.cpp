// Compiler scalability (extra, not a paper figure): wall-clock cost of the
// analyses and transformation passes as the application graph grows.

#include <benchmark/benchmark.h>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/elementwise.h"
#include "kernels/input.h"
#include "kernels/output.h"

using namespace bpp;

namespace {

Graph chain(int stages, Size2 frame, double rate) {
  Graph g;
  auto& in = g.add<InputKernel>("input", frame, rate, 1);
  const Kernel* prev = &in;
  for (int d = 0; d < stages; ++d) {
    Kernel& s = g.add_kernel(make_scale("s" + std::to_string(d), 1.01, 0.0));
    g.connect(*prev, "out", s, "in");
    prev = &s;
  }
  auto& out = g.add<OutputKernel>("sink");
  g.connect(*prev, "out", out, "in");
  return g;
}

void BM_Analyze(benchmark::State& state) {
  Graph g = chain(static_cast<int>(state.range(0)), {32, 24}, 50.0);
  for (auto _ : state) benchmark::DoNotOptimize(analyze(g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Analyze)->Range(8, 256)->Complexity();

void BM_CompileChain(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = chain(static_cast<int>(state.range(0)), {32, 24}, 50.0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(compile(std::move(g)));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CompileChain)->Range(8, 128)->Complexity();

void BM_CompileFigure1(benchmark::State& state) {
  const auto cfgs = apps::fig11_configs();
  const auto& cfg = cfgs[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = apps::figure1_app(cfg.frame, cfg.rate_hz, 1, 64);
    state.ResumeTiming();
    benchmark::DoNotOptimize(compile(std::move(g)));
  }
  state.SetLabel(cfg.tag);
}
BENCHMARK(BM_CompileFigure1)->DenseRange(0, 3);

void BM_GreedyMapping(benchmark::State& state) {
  Graph g = chain(static_cast<int>(state.range(0)), {32, 24}, 50.0);
  DataflowResult df = analyze(g);
  LoadMap loads(g, df);
  for (auto _ : state)
    benchmark::DoNotOptimize(map_greedy(g, loads, MachineSpec{}));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyMapping)->Range(8, 128)->Complexity();

}  // namespace

BENCHMARK_MAIN();
