// §IV-D extension: simulated-annealing placement onto a 2-D mesh
// ("implemented, but not integrated within the simulator" in the paper).
// Communication cost (traffic-weighted Manhattan distance) of row-major vs
// annealed placements for the compiled benchmark applications.

#include <cstdio>

#include "bench_util.h"
#include "placement/placement.h"

using namespace bpp;

int main() {
  bench::print_header("Placement (SA)",
                      "annealed vs row-major mesh placement cost");

  struct Case {
    const char* name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"fig1b SS", apps::figure1_app({48, 36}, 180.0, 1, 64)});
  cases.push_back({"fig1b BF", apps::figure1_app({96, 72}, 130.0, 1, 64)});
  cases.push_back({"histogram 2F", apps::histogram_app({64, 48}, 450.0, 1)});
  cases.push_back({"multi-conv", apps::multi_convolution_app({48, 36}, 150.0, 1)});

  std::printf("\n%-14s %6s %6s | %14s %14s | %6s\n", "program", "cores",
              "mesh", "row-major", "annealed", "saved");
  for (Case& c : cases) {
    CompiledApp app = compile(std::move(c.g));
    const MeshSpec mesh = mesh_for(app.mapping.cores);
    const Placement base =
        place_row_major(app.graph, app.mapping, app.loads, mesh);
    const Placement sa =
        place_annealed(app.graph, app.mapping, app.loads, mesh, 1, 20000);
    std::printf("%-14s %6d %3dx%-3d | %14.3e %14.3e | %5.1f%%\n", c.name,
                app.mapping.cores, mesh.width, mesh.height, base.cost, sa.cost,
                100.0 * (1.0 - sa.cost / base.cost));
  }
  std::printf("\ncost = sum over cross-core channels of words/s x Manhattan "
              "distance.\n");
  return 0;
}
