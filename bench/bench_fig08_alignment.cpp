// Figure 8 + §III-C: overlay of the differently-inset median and
// convolution outputs, and the automatic trim/pad adjustment.

#include <cstdio>

#include "bench_util.h"
#include "compiler/alignment.h"
#include "compiler/dataflow.h"
#include "kernels/kernels.h"
#include "ref/reference.h"
#include "runtime/runtime.h"

using namespace bpp;

namespace {

void overlay(Size2 frame) {
  Graph g = apps::figure1_app(frame, 50.0, 1);
  const DataflowResult df = analyze(g, Strictness::Lenient);
  const KernelId sub = g.find("subtract");
  auto info = [&](int port) {
    return df.channel[static_cast<size_t>(*g.in_channel(sub, port))];
  };
  const StreamInfo med = info(0);
  const StreamInfo conv = info(1);
  std::printf("\ninput %dx%d\n", frame.w, frame.h);
  std::printf("  median3x3 output: %dx%d, inset (%.0f,%.0f) -> covers "
              "[%.0f,%.0f)x[%.0f,%.0f)\n",
              med.frame.w, med.frame.h, med.inset.x, med.inset.y,
              med.extent().x0, med.extent().x1, med.extent().y0,
              med.extent().y1);
  std::printf("  conv5x5   output: %dx%d, inset (%.0f,%.0f) -> covers "
              "[%.0f,%.0f)x[%.0f,%.0f)\n",
              conv.frame.w, conv.frame.h, conv.inset.x, conv.inset.y,
              conv.extent().x0, conv.extent().x1, conv.extent().y0,
              conv.extent().y1);
  const Rect common = Rect::intersect(med.extent(), conv.extent());
  std::printf("  aligned overlap:  [%.0f,%.0f)x[%.0f,%.0f) (paper Fig. 8 "
              "\"outputs aligned\")\n",
              common.x0, common.x1, common.y0, common.y1);

  for (AlignPolicy pol : {AlignPolicy::Trim, AlignPolicy::Pad}) {
    Graph h = apps::figure1_app(frame, 50.0, 1);
    const auto edits = align(h, pol);
    for (const AlignmentEdit& e : edits)
      std::printf("  %s: inserted %s [%d,%d,%d,%d] at %s\n",
                  pol == AlignPolicy::Trim ? "trim" : "pad ",
                  e.inserted.c_str(), e.border.left, e.border.top,
                  e.border.right, e.border.bottom, e.at_kernel.c_str());
  }
}

void policies_differ(Size2 frame) {
  std::printf("\npad vs trim is a semantic choice (paper: \"must be made by "
              "the programmer\")\n");
  const Tile img = ref::make_frame(frame, 0, default_pixel_fn());
  const auto t =
      ref::figure1_histogram(img, apps::blur_coeff5x5(), apps::diff_bins(16));
  const auto p = ref::figure1_histogram_padded(img, apps::blur_coeff5x5(),
                                               apps::diff_bins(16));
  long nt = 0, np = 0;
  for (long v : t) nt += v;
  for (long v : p) np += v;
  std::printf("  trim: %ld histogram samples/frame; pad: %ld samples/frame\n",
              nt, np);

  for (AlignPolicy pol : {AlignPolicy::Trim, AlignPolicy::Pad}) {
    CompileOptions opt;
    opt.machine = machines::roomy();
    opt.align_policy = pol;
    CompiledApp app = compile(apps::figure1_app(frame, 25.0, 1, 16), opt);
    const RuntimeResult r = run_sequential(app.graph);
    const auto& out =
        dynamic_cast<const OutputKernel&>(app.graph.by_name("result"));
    long sum = 0;
    bool match = true;
    const auto& want = pol == AlignPolicy::Trim ? t : p;
    for (int i = 0; i < 16; ++i) {
      sum += static_cast<long>(out.tiles().front().at(i, 0));
      match = match && static_cast<long>(out.tiles().front().at(i, 0)) ==
                           want[static_cast<size_t>(i)];
    }
    std::printf("  compiled %s: completed=%d, %ld samples, matches scalar "
                "reference: %s\n",
                pol == AlignPolicy::Trim ? "Trim" : "Pad ", r.completed, sum,
                match ? "yes" : "NO");
  }
}

}  // namespace

int main() {
  bench::print_header("Figure 8", "inset overlay and trim/pad adjustment");
  overlay({100, 100});
  overlay({20, 16});
  policies_differ({20, 16});
  return 0;
}
