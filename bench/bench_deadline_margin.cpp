// Deadline margin sweep: drive the edge-detect pipeline at increasing
// input rates and read the real-time analysis layer at each point —
// per-frame latency, steady-state completion period, deadline misses
// against the declared rate, and the kernel the critical-path walk blames
// once the graph stops keeping up. The transition row is the empirical
// version of the compiler's static rate bound (§III-A, §III-E): below it
// the schedule holds exactly, above it completions drift later every
// frame and the saturated kernel surfaces as the bottleneck.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "obs/critical_path.h"
#include "obs/deadline.h"
#include "obs/frames.h"
#include "obs/recorder.h"

using namespace bpp;

int main() {
  bench::print_header("Deadline margin",
                      "edge-detect latency/misses/bottleneck vs input rate");

  if (!obs::kCompiledIn) {
    std::printf("observability compiled out (-DBPP_OBS=OFF); nothing to "
                "measure\n");
    return 0;
  }

  const Size2 frame{48, 36};
  const int frames = 5;
  std::printf("\n%-8s %10s %10s %10s %7s  %s\n", "rate", "lat p50", "lat p95",
              "period", "missed", "bottleneck");

  for (const double rate : {60.0, 120.0, 180.0, 300.0, 600.0, 1200.0}) {
    CompiledApp app = compile(apps::sobel_app(frame, rate, frames, 100.0));
    Graph g = app.graph.clone();
    obs::Recorder rec;
    SimOptions opt;
    opt.machine = app.options.machine;
    opt.recorder = &rec;
    const SimResult r = simulate(g, app.mapping, opt);
    if (!r.completed) {
      std::printf("%-8.0f did not complete: %s\n", rate,
                  r.diagnostics.c_str());
      continue;
    }

    const obs::FrameReport fr = obs::analyze_frames(rec.trace());
    obs::DeadlineMonitor mon({rate, 0.0});
    mon.observe(fr);
    const obs::CriticalPathReport cp =
        obs::analyze_critical_path(rec.trace(), fr, app.graph);
    const std::string who =
        cp.bottleneck >= 0 ? rec.trace().kernel_name(cp.bottleneck) : "-";
    std::printf("%-8.0f %8.3fms %8.3fms %8.3fms %3ld/%-3ld  %s\n", rate,
                fr.latency.p50 * 1e3, fr.latency.p95 * 1e3,
                fr.period.mean * 1e3, mon.misses(), mon.frames(), who.c_str());
  }
  return 0;
}
