// §VI framing: "Rather than finding the minimum number of processors to
// meet a fixed rate, [StreamIt tries] to use a fixed number of processors
// to obtain the highest rate possible. Here the minimum number of
// processors is set by the real-time requirements."
//
// This sweep shows that tradeoff directly: as the input rate of the
// Fig. 1(b) application grows, the compiler provisions more cores (1:1 and
// greedy-mapped), and each configuration is verified to meet real time on
// the simulator.

#include <cstdio>

#include "bench_util.h"
#include "kernels/kernels.h"

using namespace bpp;

int main() {
  bench::print_header("Cores vs rate",
                      "minimum processors to meet a growing real-time rate");

  const Size2 frame{48, 36};
  std::printf("\nFig. 1(b) application at %dx%d\n", frame.w, frame.h);
  std::printf("%8s | %8s %8s | %10s %10s | %9s %4s\n", "rate Hz", "kernels",
              "replicas", "cores 1:1", "cores GM", "util GM", "RT");

  for (double rate : {60.0, 120.0, 180.0, 240.0, 300.0, 360.0, 420.0, 480.0}) {
    CompiledApp app = compile(apps::figure1_app(frame, rate, 2, 64));
    int replicas = 0;
    for (const auto& [name, p] : app.parallelization.factors) replicas += p;
    const SimResult r = bench::simulate_mapping(app, app.mapping);
    std::printf("%8.0f | %8d %8d | %10d %10d | %8.1f%% %4s\n", rate,
                app.graph.kernel_count(), replicas, app.one_to_one.cores,
                app.mapping.cores,
                100.0 * bench::breakdown(r, app.options.machine).total(),
                r.realtime_met ? "MET" : "VIOL");
  }

  std::printf("\nthe compiler buys exactly the cores the rate demands; the\n"
              "greedy mapping gives some of them back (§V) while keeping the\n"
              "real-time guarantee.\n");
  return 0;
}
