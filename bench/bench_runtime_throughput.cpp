// Host-runtime throughput (repro substrate: "DSL+runtime on a multicore
// laptop"): pixels per second through the compiled Fig. 1(b) application
// for different worker-thread mappings — and, for BM_RuntimeThreads, per
// SIMD ISA the machine supports (the end-to-end view of the per-primitive
// speedups in bench_kernels) — plus simulator event throughput.

#include <benchmark/benchmark.h>

#include <string>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "kernels/simd/simd.h"
#include "obs/recorder.h"
#include "runtime/runtime.h"
#include "sim/simulator.h"

using namespace bpp;

namespace {

void BM_RuntimeThreads(benchmark::State& state, simd::Isa isa, int threads) {
  const simd::Isa saved = simd::active_isa();
  simd::set_isa(isa);
  const Size2 frame{48, 36};
  const int frames = 4;
  CompiledApp app = compile(apps::figure1_app(frame, 180.0, frames, 32));

  for (auto _ : state) {
    state.PauseTiming();
    Graph g = app.graph.clone();
    Mapping m;
    m.cores = threads;
    m.core_of.resize(static_cast<size_t>(g.kernel_count()));
    for (int k = 0; k < g.kernel_count(); ++k)
      m.core_of[static_cast<size_t>(k)] = k % threads;
    state.ResumeTiming();
    const RuntimeResult r = run_threaded(g, m);
    if (!r.completed) state.SkipWithError("runtime did not complete");
  }
  state.SetItemsProcessed(state.iterations() * frame.area() * frames);
  simd::set_isa(saved);
}

// The ISA dimension can't use DenseRange: the supported set is only known
// at runtime, so each (isa, threads) point registers its own benchmark.
// UseRealTime: workers run on their own threads, so the benchmark thread's
// CPU clock misses nearly all the work — wall time is the honest metric.
void register_runtime_threads() {
  for (simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2,
        simd::Isa::kNeon}) {
    if (!simd::supported(isa)) continue;
    for (int threads = 1; threads <= 4; ++threads) {
      const std::string name = "BM_RuntimeThreads/" +
                               std::string(simd::isa_name(isa)) + "/" +
                               std::to_string(threads);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [isa, threads](benchmark::State& s) {
            BM_RuntimeThreads(s, isa, threads);
          })
          ->UseRealTime()
          ->Unit(benchmark::kMillisecond);
    }
  }
}

// Same workload with the observability recorder attached: the delta
// against BM_RuntimeThreads is the cost of enabled tracing (per-core
// event rings + wall-clock span timestamps on every firing).
void BM_RuntimeThreadsTraced(benchmark::State& state) {
  const Size2 frame{48, 36};
  const int frames = 4;
  CompiledApp app = compile(apps::figure1_app(frame, 180.0, frames, 32));
  const int threads = static_cast<int>(state.range(0));

  long events = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = app.graph.clone();
    Mapping m;
    m.cores = threads;
    m.core_of.resize(static_cast<size_t>(g.kernel_count()));
    for (int k = 0; k < g.kernel_count(); ++k)
      m.core_of[static_cast<size_t>(k)] = k % threads;
    obs::Recorder rec;
    RuntimeOptions opt;
    opt.recorder = &rec;
    state.ResumeTiming();
    const RuntimeResult r = run_threaded(g, m, opt);
    if (!r.completed) state.SkipWithError("runtime did not complete");
    events = static_cast<long>(rec.trace().events.size());
  }
  state.SetItemsProcessed(state.iterations() * frame.area() * frames);
  state.SetLabel("events/run: " + std::to_string(events));
}
BENCHMARK(BM_RuntimeThreadsTraced)
    ->DenseRange(1, 4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_RuntimeCompiledMapping(benchmark::State& state) {
  const Size2 frame{48, 36};
  const int frames = 4;
  CompiledApp app = compile(apps::figure1_app(frame, 180.0, frames, 32));
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = app.graph.clone();
    state.ResumeTiming();
    const RuntimeResult r = run_threaded(g, app.mapping);
    if (!r.completed) state.SkipWithError("runtime did not complete");
  }
  state.SetItemsProcessed(state.iterations() * frame.area() * frames);
  state.SetLabel(std::to_string(app.mapping.cores) + " cores");
}
BENCHMARK(BM_RuntimeCompiledMapping)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorEvents(benchmark::State& state) {
  const Size2 frame{48, 36};
  CompiledApp app = compile(apps::figure1_app(frame, 180.0, 2, 32));
  long firings = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Graph g = app.graph.clone();
    state.ResumeTiming();
    SimOptions opt;
    opt.machine = app.options.machine;
    const SimResult r = simulate(g, app.mapping, opt);
    firings = r.total_firings;
    if (!r.completed) state.SkipWithError("simulation did not complete");
  }
  state.SetItemsProcessed(state.iterations() * firings);
  state.SetLabel("firings/run: " + std::to_string(firings));
}
BENCHMARK(BM_SimulatorEvents)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  register_runtime_threads();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
