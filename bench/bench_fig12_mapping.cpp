// Figure 12 + §V: kernel-to-processor mappings for the compiled example
// application — 1:1 vs greedy time-multiplexing — with the utilization
// improvement the paper reports (20% -> 37% for this example).

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "kernels/kernels.h"

using namespace bpp;

int main() {
  bench::print_header("Figure 12", "1:1 vs greedy kernel-to-core mapping");

  // The example application at its Small/Slow configuration.
  const auto cfg = apps::fig11_configs().front();
  CompiledApp app = compile(apps::figure1_app(cfg.frame, cfg.rate_hz, 2, 64));
  std::printf("\napplication: Fig. 1(b) at %dx%d @ %.0f Hz -> %d kernels\n",
              cfg.frame.w, cfg.frame.h, cfg.rate_hz, app.graph.kernel_count());

  const auto pinned = multiplex_pinned(app.graph);

  for (const auto& [label, map] :
       {std::pair<const char*, const Mapping*>{"1:1 mapping (Fig. 12a)",
                                               &app.one_to_one},
        std::pair<const char*, const Mapping*>{"greedy mapping (Fig. 12b)",
                                               &app.mapping}}) {
    std::printf("\n%s: %d cores\n", label, map->cores);
    const auto groups = map->groups();
    for (int c = 0; c < map->cores; ++c) {
      const auto& grp = groups[static_cast<size_t>(c)];
      if (grp.size() < 2 && map == &app.mapping &&
          app.graph.kernel(grp.front()).is_source())
        continue;  // keep the listing readable: skip lone sources
      if (map == &app.one_to_one && grp.size() == 1 &&
          app.graph.kernel(grp.front()).is_source())
        continue;
      std::printf("  core %2d:", c);
      for (KernelId k : grp) {
        std::printf(" %s", app.graph.kernel(k).name().c_str());
        if (pinned.count(k)) std::printf("*");
      }
      std::printf("\n");
    }
    const SimResult r = bench::simulate_mapping(app, *map);
    const auto b = bench::breakdown(r, app.options.machine);
    std::printf("  simulated avg core utilization: %.1f%% "
                "(run %.1f%% / read %.1f%% / write %.1f%% / sched %.1f%%)\n",
                100 * b.total(), 100 * b.run, 100 * b.read, 100 * b.write,
                100 * b.sw);
  }

  const SimResult r1 = bench::simulate_mapping(app, app.one_to_one);
  const SimResult rg = bench::simulate_mapping(app, app.mapping);
  const double u1 = bench::breakdown(r1, app.options.machine).total();
  const double ug = bench::breakdown(rg, app.options.machine).total();
  std::printf("\nutilization %.1f%% -> %.1f%% (x%.2f); paper reports "
              "20%% -> 37%% (x1.85) for its example.\n",
              100 * u1, 100 * ug, ug / u1);
  std::printf("(* = pinned: sources and initial input buffers are never "
              "multiplexed)\n");
  return 0;
}
