// Figure 9: reuse-optimized input buffers (the extension the paper
// describes but did not implement for its results). Compares three
// schemes for a parallelized 5x5 convolution:
//   (a) one buffer + round-robin split (the paper's implemented baseline),
//   (b) reuse-striped slices WITHOUT output buffering (prone to stalls),
//   (c) reuse-striped slices WITH decoupling output FIFOs.

#include <cstdio>

#include "bench_util.h"
#include "kernels/kernels.h"
#include "runtime/runtime.h"

using namespace bpp;

namespace {

Graph conv_app(Size2 frame, double rate, int frames) {
  Graph g;
  auto& in = g.add<InputKernel>("input", frame, rate, frames);
  auto& conv = g.add<ConvolutionKernel>("conv5x5", 5, 5);
  auto& coeff = g.add<ConstSource>("coeff", apps::blur_coeff5x5());
  auto& out = g.add<OutputKernel>("result");
  g.connect(in, "out", conv, "in");
  g.connect(coeff, "out", conv, "coeff");
  g.connect(conv, "out", out, "in");
  return g;
}

struct Measurement {
  double read_cycles, write_cycles, run_cycles;
  double max_lag;
  bool realtime;
  bool completed;
};

Measurement measure(CompiledApp app, long fifo_slack_override = -1) {
  if (fifo_slack_override >= 0) {
    // Scheme (b): strangle the decoupling FIFOs to show the stalls the
    // paper warns about ("sufficient output buffering must be provided").
    for (int k = 0; k < app.graph.kernel_count(); ++k)
      if (auto* b = dynamic_cast<BufferKernel*>(&app.graph.kernel(k)))
        if (b->out_window() == Size2{1, 1})
          b->set_output_slack(fifo_slack_override);
  }
  SimOptions opt;
  opt.machine = app.options.machine;
  // Minimal channel slack: the output FIFOs are the only decoupling, so
  // the run-length join's turn-taking exposes insufficient buffering.
  opt.channel_capacity = 2;
  const SimResult r = simulate(app.graph, app.mapping, opt);
  const CoreStats t = r.totals();
  return {t.read_cycles, t.write_cycles, t.run_cycles,
          r.max_input_lag_seconds, r.realtime_met, r.completed};
}

}  // namespace

int main() {
  bench::print_header("Figure 9", "reuse-optimized buffering ablation");
  // Wide frame: each replica's column stripe is ~39 windows per line, far
  // beyond the downstream slack, so insufficient output buffering
  // serializes the replicas while the run-length join drains one stripe.
  const Size2 frame{160, 36};
  const double rate = 150.0;
  const int frames = 2;

  CompileOptions base;
  base.machine.mem_words = 4096;  // keep buffers whole so striping applies

  CompileOptions rr = base;
  CompileOptions striped = base;
  striped.reuse_opt = true;

  std::printf("\napplication: 5x5 convolution of %dx%d @ %.0f Hz, %d frames\n",
              frame.w, frame.h, rate, frames);

  const Measurement a = measure(compile(conv_app(frame, rate, frames), rr));
  const Measurement b =
      measure(compile(conv_app(frame, rate, frames), striped), /*slack=*/1);
  const Measurement c = measure(compile(conv_app(frame, rate, frames), striped));

  std::printf("\n%-44s %10s %10s %10s %9s %3s\n", "scheme", "read cyc",
              "write cyc", "run cyc", "lag (us)", "RT");
  auto row = [](const char* name, const Measurement& m) {
    std::printf("%-44s %10.0f %10.0f %10.0f %9.2f %3s\n", name, m.read_cycles,
                m.write_cycles, m.run_cycles, m.max_lag * 1e6,
                m.realtime ? "yes" : "NO");
  };
  row("(a) round-robin split (paper baseline)", a);
  row("(b) reuse stripes, strangled output FIFOs", b);
  row("(c) reuse stripes + output buffering", c);

  const double io_a = a.read_cycles + a.write_cycles;
  const double io_c = c.read_cycles + c.write_cycles;
  std::printf("\ntransfer reduction (c vs a): %.1f%% of the round-robin I/O"
              " cycles\n", 100.0 * io_c / io_a);
  std::printf("paper's point: the optimization only helps when output\n"
              "buffering keeps the replicas running -- compare the lag of\n"
              "(b) and (c).\n");
  return 0;
}
