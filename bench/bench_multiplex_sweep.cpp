// §V text: "This simple algorithm improves the utilization by 1.5x across
// a variety of test programs ranging in size from fewer than 10 kernels to
// more than 50." Sweep of real and synthetic programs by size.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "kernels/elementwise.h"
#include "kernels/input.h"
#include "kernels/output.h"

using namespace bpp;

namespace {

/// Synthetic fan of `branches` cheap unary chains of `depth` stages, to
/// grow graphs past 50 kernels.
Graph synthetic_fan(int branches, int depth, Size2 frame, double rate,
                    long stage_cycles = 80) {
  Graph g;
  auto& in = g.add<InputKernel>("input", frame, rate, 2);
  for (int b = 0; b < branches; ++b) {
    const Kernel* prev = &in;
    std::string prev_port = "out";
    for (int d = 0; d < depth; ++d) {
      Kernel& s = g.add_kernel(std::make_unique<UnaryOpKernel>(
          "s" + std::to_string(b) + "_" + std::to_string(d),
          [](double v) { return 1.001 * v + 0.1; }, stage_cycles));
      g.connect(*prev, prev_port, s, "in");
      prev = &s;
      prev_port = "out";
    }
    auto& out = g.add<OutputKernel>("sink" + std::to_string(b));
    g.connect(*prev, prev_port, out, "in");
  }
  return g;
}

}  // namespace

int main() {
  bench::print_header("Section V sweep",
                      "greedy multiplexing gain vs program size");

  struct Case {
    std::string name;
    Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"bayer", apps::bayer_app({64, 48}, 150.0, 2)});
  cases.push_back({"histogram", apps::histogram_app({64, 48}, 150.0, 2)});
  cases.push_back({"multi-conv", apps::multi_convolution_app({48, 36}, 150.0, 2)});
  cases.push_back({"fig1b SS", apps::figure1_app({48, 36}, 180.0, 2, 64)});
  cases.push_back({"fig1b BF", apps::figure1_app({96, 72}, 130.0, 2, 64)});
  cases.push_back({"fan 4x4", synthetic_fan(4, 4, {32, 24}, 120.0)});
  cases.push_back({"fan 8x6", synthetic_fan(8, 6, {32, 24}, 120.0)});
  cases.push_back({"fan 10x8", synthetic_fan(10, 8, {24, 18}, 120.0)});

  std::printf("\n%-14s %8s %8s | %8s %8s | %6s\n", "program", "kernels",
              "cores1:1", "coresGM", "util x", "gain");
  double sum = 0.0;
  int n = 0, kmin = 1 << 30, kmax = 0;
  for (Case& c : cases) {
    CompiledApp app = compile(std::move(c.g));
    const SimResult r1 = bench::simulate_mapping(app, app.one_to_one);
    const SimResult rg = bench::simulate_mapping(app, app.mapping);
    const double u1 = bench::breakdown(r1, app.options.machine).total();
    const double ug = bench::breakdown(rg, app.options.machine).total();
    const double gain = u1 > 0 ? ug / u1 : 0.0;
    sum += gain;
    ++n;
    kmin = std::min(kmin, app.graph.kernel_count());
    kmax = std::max(kmax, app.graph.kernel_count());
    std::printf("%-14s %8d %8d | %8d %5.1f%%->%4.1f%% | %5.2fx\n",
                c.name.c_str(), app.graph.kernel_count(), app.one_to_one.cores,
                app.mapping.cores, 100 * u1, 100 * ug, gain);
  }
  std::printf("\naverage gain %.2fx over %d programs, %d..%d kernels "
              "(paper: ~1.5x from <10 to >50 kernels)\n",
              sum / n, n, kmin, kmax);
  return 0;
}
