#pragma once
// Shared helpers for the figure-reproduction benchmark binaries.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/pipelines.h"
#include "compiler/pipeline.h"
#include "compiler/report.h"
#include "sim/simulator.h"

namespace bpp::bench {

/// Simulate a compiled app under a given mapping (on a clone, so the
/// caller can reuse the compiled graph) and return the result.
inline SimResult simulate_mapping(const CompiledApp& app, const Mapping& map,
                                  int channel_capacity = 4) {
  Graph g = app.graph.clone();
  SimOptions opt;
  opt.machine = app.options.machine;
  opt.channel_capacity = channel_capacity;
  return simulate(g, map, opt);
}

/// Utilization breakdown of a simulation, normalized per non-source core:
/// fractions of the total core-time spent running, reading, and writing.
struct UtilBreakdown {
  double run = 0.0, read = 0.0, write = 0.0, sw = 0.0;
  [[nodiscard]] double total() const { return run + read + write + sw; }
};

inline UtilBreakdown breakdown(const SimResult& r, const MachineSpec& m) {
  UtilBreakdown b;
  if (r.sim_seconds <= 0.0) return b;
  int n = 0;
  for (const CoreStats& c : r.cores)
    if (!c.source_only) ++n;
  if (n == 0) return b;
  const double denom = m.clock_hz * r.sim_seconds * n;
  const CoreStats t = r.totals();
  b.run = t.run_cycles / denom;
  b.read = t.read_cycles / denom;
  b.write = t.write_cycles / denom;
  b.sw = t.switch_cycles / denom;
  return b;
}

inline void print_header(const char* figure, const char* what) {
  std::printf("================================================================\n");
  std::printf("%s - %s\n", figure, what);
  std::printf("(block-parallel programming reproduction; shapes match the\n");
  std::printf(" paper, absolute numbers depend on this machine model)\n");
  std::printf("================================================================\n");
}

}  // namespace bpp::bench
