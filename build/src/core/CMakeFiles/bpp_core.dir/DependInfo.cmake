
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dot_export.cpp" "src/core/CMakeFiles/bpp_core.dir/dot_export.cpp.o" "gcc" "src/core/CMakeFiles/bpp_core.dir/dot_export.cpp.o.d"
  "/root/repo/src/core/firing.cpp" "src/core/CMakeFiles/bpp_core.dir/firing.cpp.o" "gcc" "src/core/CMakeFiles/bpp_core.dir/firing.cpp.o.d"
  "/root/repo/src/core/geometry.cpp" "src/core/CMakeFiles/bpp_core.dir/geometry.cpp.o" "gcc" "src/core/CMakeFiles/bpp_core.dir/geometry.cpp.o.d"
  "/root/repo/src/core/graph.cpp" "src/core/CMakeFiles/bpp_core.dir/graph.cpp.o" "gcc" "src/core/CMakeFiles/bpp_core.dir/graph.cpp.o.d"
  "/root/repo/src/core/kernel.cpp" "src/core/CMakeFiles/bpp_core.dir/kernel.cpp.o" "gcc" "src/core/CMakeFiles/bpp_core.dir/kernel.cpp.o.d"
  "/root/repo/src/core/token.cpp" "src/core/CMakeFiles/bpp_core.dir/token.cpp.o" "gcc" "src/core/CMakeFiles/bpp_core.dir/token.cpp.o.d"
  "/root/repo/src/core/validation.cpp" "src/core/CMakeFiles/bpp_core.dir/validation.cpp.o" "gcc" "src/core/CMakeFiles/bpp_core.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
