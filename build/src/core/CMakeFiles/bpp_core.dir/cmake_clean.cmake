file(REMOVE_RECURSE
  "CMakeFiles/bpp_core.dir/dot_export.cpp.o"
  "CMakeFiles/bpp_core.dir/dot_export.cpp.o.d"
  "CMakeFiles/bpp_core.dir/firing.cpp.o"
  "CMakeFiles/bpp_core.dir/firing.cpp.o.d"
  "CMakeFiles/bpp_core.dir/geometry.cpp.o"
  "CMakeFiles/bpp_core.dir/geometry.cpp.o.d"
  "CMakeFiles/bpp_core.dir/graph.cpp.o"
  "CMakeFiles/bpp_core.dir/graph.cpp.o.d"
  "CMakeFiles/bpp_core.dir/kernel.cpp.o"
  "CMakeFiles/bpp_core.dir/kernel.cpp.o.d"
  "CMakeFiles/bpp_core.dir/token.cpp.o"
  "CMakeFiles/bpp_core.dir/token.cpp.o.d"
  "CMakeFiles/bpp_core.dir/validation.cpp.o"
  "CMakeFiles/bpp_core.dir/validation.cpp.o.d"
  "libbpp_core.a"
  "libbpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
