file(REMOVE_RECURSE
  "libbpp_core.a"
)
