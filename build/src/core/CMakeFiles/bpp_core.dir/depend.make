# Empty dependencies file for bpp_core.
# This may be replaced when dependencies are built.
