# Empty dependencies file for bpp_compiler.
# This may be replaced when dependencies are built.
