file(REMOVE_RECURSE
  "CMakeFiles/bpp_compiler.dir/alignment.cpp.o"
  "CMakeFiles/bpp_compiler.dir/alignment.cpp.o.d"
  "CMakeFiles/bpp_compiler.dir/buffer_split.cpp.o"
  "CMakeFiles/bpp_compiler.dir/buffer_split.cpp.o.d"
  "CMakeFiles/bpp_compiler.dir/buffering.cpp.o"
  "CMakeFiles/bpp_compiler.dir/buffering.cpp.o.d"
  "CMakeFiles/bpp_compiler.dir/dataflow.cpp.o"
  "CMakeFiles/bpp_compiler.dir/dataflow.cpp.o.d"
  "CMakeFiles/bpp_compiler.dir/multiplex.cpp.o"
  "CMakeFiles/bpp_compiler.dir/multiplex.cpp.o.d"
  "CMakeFiles/bpp_compiler.dir/parallelize.cpp.o"
  "CMakeFiles/bpp_compiler.dir/parallelize.cpp.o.d"
  "CMakeFiles/bpp_compiler.dir/pipeline.cpp.o"
  "CMakeFiles/bpp_compiler.dir/pipeline.cpp.o.d"
  "CMakeFiles/bpp_compiler.dir/report.cpp.o"
  "CMakeFiles/bpp_compiler.dir/report.cpp.o.d"
  "libbpp_compiler.a"
  "libbpp_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpp_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
