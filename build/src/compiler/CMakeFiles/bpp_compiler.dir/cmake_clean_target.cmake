file(REMOVE_RECURSE
  "libbpp_compiler.a"
)
