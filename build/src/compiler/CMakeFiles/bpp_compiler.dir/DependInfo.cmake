
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/alignment.cpp" "src/compiler/CMakeFiles/bpp_compiler.dir/alignment.cpp.o" "gcc" "src/compiler/CMakeFiles/bpp_compiler.dir/alignment.cpp.o.d"
  "/root/repo/src/compiler/buffer_split.cpp" "src/compiler/CMakeFiles/bpp_compiler.dir/buffer_split.cpp.o" "gcc" "src/compiler/CMakeFiles/bpp_compiler.dir/buffer_split.cpp.o.d"
  "/root/repo/src/compiler/buffering.cpp" "src/compiler/CMakeFiles/bpp_compiler.dir/buffering.cpp.o" "gcc" "src/compiler/CMakeFiles/bpp_compiler.dir/buffering.cpp.o.d"
  "/root/repo/src/compiler/dataflow.cpp" "src/compiler/CMakeFiles/bpp_compiler.dir/dataflow.cpp.o" "gcc" "src/compiler/CMakeFiles/bpp_compiler.dir/dataflow.cpp.o.d"
  "/root/repo/src/compiler/multiplex.cpp" "src/compiler/CMakeFiles/bpp_compiler.dir/multiplex.cpp.o" "gcc" "src/compiler/CMakeFiles/bpp_compiler.dir/multiplex.cpp.o.d"
  "/root/repo/src/compiler/parallelize.cpp" "src/compiler/CMakeFiles/bpp_compiler.dir/parallelize.cpp.o" "gcc" "src/compiler/CMakeFiles/bpp_compiler.dir/parallelize.cpp.o.d"
  "/root/repo/src/compiler/pipeline.cpp" "src/compiler/CMakeFiles/bpp_compiler.dir/pipeline.cpp.o" "gcc" "src/compiler/CMakeFiles/bpp_compiler.dir/pipeline.cpp.o.d"
  "/root/repo/src/compiler/report.cpp" "src/compiler/CMakeFiles/bpp_compiler.dir/report.cpp.o" "gcc" "src/compiler/CMakeFiles/bpp_compiler.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bpp_kernels.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
