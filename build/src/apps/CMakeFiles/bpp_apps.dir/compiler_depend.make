# Empty compiler generated dependencies file for bpp_apps.
# This may be replaced when dependencies are built.
