file(REMOVE_RECURSE
  "CMakeFiles/bpp_apps.dir/pipelines.cpp.o"
  "CMakeFiles/bpp_apps.dir/pipelines.cpp.o.d"
  "libbpp_apps.a"
  "libbpp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
