file(REMOVE_RECURSE
  "libbpp_apps.a"
)
