# Empty compiler generated dependencies file for bpp_ref.
# This may be replaced when dependencies are built.
