file(REMOVE_RECURSE
  "CMakeFiles/bpp_ref.dir/reference.cpp.o"
  "CMakeFiles/bpp_ref.dir/reference.cpp.o.d"
  "libbpp_ref.a"
  "libbpp_ref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpp_ref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
