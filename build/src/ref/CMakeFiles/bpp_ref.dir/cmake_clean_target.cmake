file(REMOVE_RECURSE
  "libbpp_ref.a"
)
