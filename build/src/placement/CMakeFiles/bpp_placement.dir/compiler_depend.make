# Empty compiler generated dependencies file for bpp_placement.
# This may be replaced when dependencies are built.
