file(REMOVE_RECURSE
  "libbpp_placement.a"
)
