file(REMOVE_RECURSE
  "CMakeFiles/bpp_placement.dir/placement.cpp.o"
  "CMakeFiles/bpp_placement.dir/placement.cpp.o.d"
  "libbpp_placement.a"
  "libbpp_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpp_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
