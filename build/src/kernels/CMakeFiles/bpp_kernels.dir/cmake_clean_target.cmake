file(REMOVE_RECURSE
  "libbpp_kernels.a"
)
