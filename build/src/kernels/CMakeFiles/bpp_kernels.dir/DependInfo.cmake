
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/bayer.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/bayer.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/bayer.cpp.o.d"
  "/root/repo/src/kernels/buffer.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/buffer.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/buffer.cpp.o.d"
  "/root/repo/src/kernels/const_source.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/const_source.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/const_source.cpp.o.d"
  "/root/repo/src/kernels/convolution.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/convolution.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/convolution.cpp.o.d"
  "/root/repo/src/kernels/elementwise.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/elementwise.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/elementwise.cpp.o.d"
  "/root/repo/src/kernels/events.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/events.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/events.cpp.o.d"
  "/root/repo/src/kernels/feedback.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/feedback.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/feedback.cpp.o.d"
  "/root/repo/src/kernels/fir.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/fir.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/fir.cpp.o.d"
  "/root/repo/src/kernels/histogram.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/histogram.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/histogram.cpp.o.d"
  "/root/repo/src/kernels/input.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/input.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/input.cpp.o.d"
  "/root/repo/src/kernels/inset.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/inset.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/inset.cpp.o.d"
  "/root/repo/src/kernels/median.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/median.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/median.cpp.o.d"
  "/root/repo/src/kernels/mirror_pad.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/mirror_pad.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/mirror_pad.cpp.o.d"
  "/root/repo/src/kernels/morphology.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/morphology.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/morphology.cpp.o.d"
  "/root/repo/src/kernels/motion.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/motion.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/motion.cpp.o.d"
  "/root/repo/src/kernels/output.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/output.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/output.cpp.o.d"
  "/root/repo/src/kernels/sampling.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/sampling.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/sampling.cpp.o.d"
  "/root/repo/src/kernels/sobel.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/sobel.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/sobel.cpp.o.d"
  "/root/repo/src/kernels/split_join.cpp" "src/kernels/CMakeFiles/bpp_kernels.dir/split_join.cpp.o" "gcc" "src/kernels/CMakeFiles/bpp_kernels.dir/split_join.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bpp_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
