# Empty dependencies file for bpp_kernels.
# This may be replaced when dependencies are built.
