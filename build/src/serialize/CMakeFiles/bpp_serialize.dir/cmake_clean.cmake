file(REMOVE_RECURSE
  "CMakeFiles/bpp_serialize.dir/serialize.cpp.o"
  "CMakeFiles/bpp_serialize.dir/serialize.cpp.o.d"
  "libbpp_serialize.a"
  "libbpp_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpp_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
