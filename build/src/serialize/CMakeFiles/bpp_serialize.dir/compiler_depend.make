# Empty compiler generated dependencies file for bpp_serialize.
# This may be replaced when dependencies are built.
