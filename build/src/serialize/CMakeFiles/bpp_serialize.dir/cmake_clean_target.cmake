file(REMOVE_RECURSE
  "libbpp_serialize.a"
)
