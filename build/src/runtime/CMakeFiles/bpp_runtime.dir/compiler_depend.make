# Empty compiler generated dependencies file for bpp_runtime.
# This may be replaced when dependencies are built.
