file(REMOVE_RECURSE
  "libbpp_runtime.a"
)
