file(REMOVE_RECURSE
  "CMakeFiles/bpp_runtime.dir/runtime.cpp.o"
  "CMakeFiles/bpp_runtime.dir/runtime.cpp.o.d"
  "libbpp_runtime.a"
  "libbpp_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpp_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
