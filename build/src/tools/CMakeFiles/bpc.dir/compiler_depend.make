# Empty compiler generated dependencies file for bpc.
# This may be replaced when dependencies are built.
