file(REMOVE_RECURSE
  "CMakeFiles/bpc.dir/bpc_main.cpp.o"
  "CMakeFiles/bpc.dir/bpc_main.cpp.o.d"
  "bpc"
  "bpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
