file(REMOVE_RECURSE
  "libbpp_sim.a"
)
