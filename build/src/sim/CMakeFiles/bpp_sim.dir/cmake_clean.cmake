file(REMOVE_RECURSE
  "CMakeFiles/bpp_sim.dir/simulator.cpp.o"
  "CMakeFiles/bpp_sim.dir/simulator.cpp.o.d"
  "libbpp_sim.a"
  "libbpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bpp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
