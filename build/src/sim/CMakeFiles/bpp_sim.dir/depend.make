# Empty dependencies file for bpp_sim.
# This may be replaced when dependencies are built.
