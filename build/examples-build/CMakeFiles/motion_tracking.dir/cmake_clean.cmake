file(REMOVE_RECURSE
  "CMakeFiles/motion_tracking.dir/motion_tracking.cpp.o"
  "CMakeFiles/motion_tracking.dir/motion_tracking.cpp.o.d"
  "motion_tracking"
  "motion_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motion_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
