# Empty compiler generated dependencies file for motion_tracking.
# This may be replaced when dependencies are built.
