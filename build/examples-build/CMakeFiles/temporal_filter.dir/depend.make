# Empty dependencies file for temporal_filter.
# This may be replaced when dependencies are built.
