file(REMOVE_RECURSE
  "CMakeFiles/temporal_filter.dir/temporal_filter.cpp.o"
  "CMakeFiles/temporal_filter.dir/temporal_filter.cpp.o.d"
  "temporal_filter"
  "temporal_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
