
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/video_analytics.cpp" "examples-build/CMakeFiles/video_analytics.dir/video_analytics.cpp.o" "gcc" "examples-build/CMakeFiles/video_analytics.dir/video_analytics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/bpp_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/bpp_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bpp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/bpp_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ref/CMakeFiles/bpp_ref.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/bpp_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
