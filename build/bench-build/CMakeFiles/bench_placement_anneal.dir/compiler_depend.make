# Empty compiler generated dependencies file for bench_placement_anneal.
# This may be replaced when dependencies are built.
