file(REMOVE_RECURSE
  "../bench/bench_placement_anneal"
  "../bench/bench_placement_anneal.pdb"
  "CMakeFiles/bench_placement_anneal.dir/bench_placement_anneal.cpp.o"
  "CMakeFiles/bench_placement_anneal.dir/bench_placement_anneal.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_placement_anneal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
