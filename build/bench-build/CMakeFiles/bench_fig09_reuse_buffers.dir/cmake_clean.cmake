file(REMOVE_RECURSE
  "../bench/bench_fig09_reuse_buffers"
  "../bench/bench_fig09_reuse_buffers.pdb"
  "CMakeFiles/bench_fig09_reuse_buffers.dir/bench_fig09_reuse_buffers.cpp.o"
  "CMakeFiles/bench_fig09_reuse_buffers.dir/bench_fig09_reuse_buffers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_reuse_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
