# Empty compiler generated dependencies file for bench_fig09_reuse_buffers.
# This may be replaced when dependencies are built.
