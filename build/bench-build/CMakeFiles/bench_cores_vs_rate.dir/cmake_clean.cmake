file(REMOVE_RECURSE
  "../bench/bench_cores_vs_rate"
  "../bench/bench_cores_vs_rate.pdb"
  "CMakeFiles/bench_cores_vs_rate.dir/bench_cores_vs_rate.cpp.o"
  "CMakeFiles/bench_cores_vs_rate.dir/bench_cores_vs_rate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cores_vs_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
