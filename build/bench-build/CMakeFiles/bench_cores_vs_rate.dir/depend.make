# Empty dependencies file for bench_cores_vs_rate.
# This may be replaced when dependencies are built.
