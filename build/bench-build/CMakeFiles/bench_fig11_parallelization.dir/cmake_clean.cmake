file(REMOVE_RECURSE
  "../bench/bench_fig11_parallelization"
  "../bench/bench_fig11_parallelization.pdb"
  "CMakeFiles/bench_fig11_parallelization.dir/bench_fig11_parallelization.cpp.o"
  "CMakeFiles/bench_fig11_parallelization.dir/bench_fig11_parallelization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_parallelization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
