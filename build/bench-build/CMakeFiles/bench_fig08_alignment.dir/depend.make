# Empty dependencies file for bench_fig08_alignment.
# This may be replaced when dependencies are built.
