# Empty compiler generated dependencies file for bench_fig05_reuse.
# This may be replaced when dependencies are built.
