# Empty compiler generated dependencies file for bench_multiplex_sweep.
# This may be replaced when dependencies are built.
