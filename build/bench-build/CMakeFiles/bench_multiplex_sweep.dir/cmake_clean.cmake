file(REMOVE_RECURSE
  "../bench/bench_multiplex_sweep"
  "../bench/bench_multiplex_sweep.pdb"
  "CMakeFiles/bench_multiplex_sweep.dir/bench_multiplex_sweep.cpp.o"
  "CMakeFiles/bench_multiplex_sweep.dir/bench_multiplex_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiplex_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
