# Empty compiler generated dependencies file for bench_compiler_scaling.
# This may be replaced when dependencies are built.
