file(REMOVE_RECURSE
  "../bench/bench_compiler_scaling"
  "../bench/bench_compiler_scaling.pdb"
  "CMakeFiles/bench_compiler_scaling.dir/bench_compiler_scaling.cpp.o"
  "CMakeFiles/bench_compiler_scaling.dir/bench_compiler_scaling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compiler_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
