# Empty dependencies file for test_kernels_compute.
# This may be replaced when dependencies are built.
