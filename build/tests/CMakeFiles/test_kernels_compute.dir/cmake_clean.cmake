file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_compute.dir/test_kernels_compute.cpp.o"
  "CMakeFiles/test_kernels_compute.dir/test_kernels_compute.cpp.o.d"
  "test_kernels_compute"
  "test_kernels_compute.pdb"
  "test_kernels_compute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
