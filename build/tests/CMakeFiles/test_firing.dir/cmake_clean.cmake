file(REMOVE_RECURSE
  "CMakeFiles/test_firing.dir/test_firing.cpp.o"
  "CMakeFiles/test_firing.dir/test_firing.cpp.o.d"
  "test_firing"
  "test_firing.pdb"
  "test_firing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_firing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
