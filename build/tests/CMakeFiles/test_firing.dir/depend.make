# Empty dependencies file for test_firing.
# This may be replaced when dependencies are built.
