file(REMOVE_RECURSE
  "CMakeFiles/test_feedback.dir/test_feedback.cpp.o"
  "CMakeFiles/test_feedback.dir/test_feedback.cpp.o.d"
  "test_feedback"
  "test_feedback.pdb"
  "test_feedback[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
