# Empty compiler generated dependencies file for test_feedback.
# This may be replaced when dependencies are built.
