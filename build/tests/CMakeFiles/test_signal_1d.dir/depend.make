# Empty dependencies file for test_signal_1d.
# This may be replaced when dependencies are built.
