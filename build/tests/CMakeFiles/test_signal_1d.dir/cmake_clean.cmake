file(REMOVE_RECURSE
  "CMakeFiles/test_signal_1d.dir/test_signal_1d.cpp.o"
  "CMakeFiles/test_signal_1d.dir/test_signal_1d.cpp.o.d"
  "test_signal_1d"
  "test_signal_1d.pdb"
  "test_signal_1d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signal_1d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
