# Empty compiler generated dependencies file for test_inset_pad.
# This may be replaced when dependencies are built.
