file(REMOVE_RECURSE
  "CMakeFiles/test_inset_pad.dir/test_inset_pad.cpp.o"
  "CMakeFiles/test_inset_pad.dir/test_inset_pad.cpp.o.d"
  "test_inset_pad"
  "test_inset_pad.pdb"
  "test_inset_pad[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inset_pad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
