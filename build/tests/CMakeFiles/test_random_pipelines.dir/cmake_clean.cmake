file(REMOVE_RECURSE
  "CMakeFiles/test_random_pipelines.dir/test_random_pipelines.cpp.o"
  "CMakeFiles/test_random_pipelines.dir/test_random_pipelines.cpp.o.d"
  "test_random_pipelines"
  "test_random_pipelines.pdb"
  "test_random_pipelines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
