# Empty dependencies file for test_buffering.
# This may be replaced when dependencies are built.
