file(REMOVE_RECURSE
  "CMakeFiles/test_buffer_split.dir/test_buffer_split.cpp.o"
  "CMakeFiles/test_buffer_split.dir/test_buffer_split.cpp.o.d"
  "test_buffer_split"
  "test_buffer_split.pdb"
  "test_buffer_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffer_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
