# Empty dependencies file for test_buffer_split.
# This may be replaced when dependencies are built.
