# Empty dependencies file for test_report_misc.
# This may be replaced when dependencies are built.
