file(REMOVE_RECURSE
  "CMakeFiles/test_report_misc.dir/test_report_misc.cpp.o"
  "CMakeFiles/test_report_misc.dir/test_report_misc.cpp.o.d"
  "test_report_misc"
  "test_report_misc.pdb"
  "test_report_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
