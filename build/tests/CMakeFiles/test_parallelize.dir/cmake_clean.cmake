file(REMOVE_RECURSE
  "CMakeFiles/test_parallelize.dir/test_parallelize.cpp.o"
  "CMakeFiles/test_parallelize.dir/test_parallelize.cpp.o.d"
  "test_parallelize"
  "test_parallelize.pdb"
  "test_parallelize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parallelize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
