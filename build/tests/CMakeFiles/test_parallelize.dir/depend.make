# Empty dependencies file for test_parallelize.
# This may be replaced when dependencies are built.
