# Empty compiler generated dependencies file for test_buffer_kernel.
# This may be replaced when dependencies are built.
