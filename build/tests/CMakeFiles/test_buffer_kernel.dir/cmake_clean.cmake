file(REMOVE_RECURSE
  "CMakeFiles/test_buffer_kernel.dir/test_buffer_kernel.cpp.o"
  "CMakeFiles/test_buffer_kernel.dir/test_buffer_kernel.cpp.o.d"
  "test_buffer_kernel"
  "test_buffer_kernel.pdb"
  "test_buffer_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_buffer_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
