# Empty compiler generated dependencies file for test_split_join.
# This may be replaced when dependencies are built.
