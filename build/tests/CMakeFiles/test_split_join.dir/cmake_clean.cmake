file(REMOVE_RECURSE
  "CMakeFiles/test_split_join.dir/test_split_join.cpp.o"
  "CMakeFiles/test_split_join.dir/test_split_join.cpp.o.d"
  "test_split_join"
  "test_split_join.pdb"
  "test_split_join[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_split_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
