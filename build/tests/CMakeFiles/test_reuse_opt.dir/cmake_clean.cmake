file(REMOVE_RECURSE
  "CMakeFiles/test_reuse_opt.dir/test_reuse_opt.cpp.o"
  "CMakeFiles/test_reuse_opt.dir/test_reuse_opt.cpp.o.d"
  "test_reuse_opt"
  "test_reuse_opt.pdb"
  "test_reuse_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reuse_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
