# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_tile[1]_include.cmake")
include("/root/repo/build/tests/test_kernel_model[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_firing[1]_include.cmake")
include("/root/repo/build/tests/test_buffer_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_inset_pad[1]_include.cmake")
include("/root/repo/build/tests/test_split_join[1]_include.cmake")
include("/root/repo/build/tests/test_kernels_compute[1]_include.cmake")
include("/root/repo/build/tests/test_dataflow[1]_include.cmake")
include("/root/repo/build/tests/test_alignment[1]_include.cmake")
include("/root/repo/build/tests/test_buffering[1]_include.cmake")
include("/root/repo/build/tests/test_parallelize[1]_include.cmake")
include("/root/repo/build/tests/test_buffer_split[1]_include.cmake")
include("/root/repo/build/tests/test_multiplex[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_feedback[1]_include.cmake")
include("/root/repo/build/tests/test_placement[1]_include.cmake")
include("/root/repo/build/tests/test_reuse_opt[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_random_pipelines[1]_include.cmake")
include("/root/repo/build/tests/test_signal_1d[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_report_misc[1]_include.cmake")
